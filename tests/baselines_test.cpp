// Behavioural contracts of the three comparator policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "baselines/owner_policy.h"
#include "baselines/random_policy.h"
#include "baselines/request_policy.h"
#include "common/availability.h"
#include "ring/ring.h"
#include "test_util.h"

namespace rfh {
namespace {

SimConfig one_partition() {
  SimConfig config;
  config.partitions = 1;
  return config;
}

TEST(RandomPolicy, GrowsToFloorAtRingSuccessors) {
  const SimConfig config = one_partition();
  const PartitionId p{0};
  auto sim = test::make_fixed_sim({QueryFlow{p, DatacenterId{3}, 1.0}},
                                  std::make_unique<RandomPolicy>(), config);
  for (int e = 0; e < 5; ++e) sim->step();
  const std::uint32_t r = sim->cluster().replica_count(p);
  EXPECT_GE(r, min_replicas(config.min_availability, config.failure_rate));

  // Every copy is on the ring preference list of the partition's key.
  const auto preference = sim->cluster().ring().preference_list(
      HashRing::partition_key(p), r + 8);
  for (const Replica& replica : sim->cluster().replicas_of(p)) {
    EXPECT_NE(std::find(preference.begin(), preference.end(), replica.server),
              preference.end())
        << "copy off the successor chain";
  }
}

TEST(RandomPolicy, NeverMigratesOrSuicides) {
  SimConfig config;
  config.partitions = 4;
  WorkloadParams params;
  params.partitions = 4;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RandomPolicy>());
  for (int e = 0; e < 60; ++e) {
    const EpochReport report = sim->step();
    EXPECT_EQ(report.migrations, 0u);
    EXPECT_EQ(report.suicides, 0u);
  }
  EXPECT_EQ(sim->cumulative_migrations(), 0u);
}

TEST(RandomPolicy, GrowsUnderSustainedOverload) {
  const SimConfig config = one_partition();
  const PartitionId p{0};
  auto sim = test::make_fixed_sim({QueryFlow{p, DatacenterId{6}, 30.0}},
                                  std::make_unique<RandomPolicy>(), config);
  for (int e = 0; e < 40; ++e) sim->step();
  EXPECT_GT(sim->cluster().replica_count(p), 2u);
  EXPECT_LE(sim->cluster().replica_count(p),
            config.max_replicas_per_partition);
}

TEST(OwnerPolicy, FirstCopyGoesToNearestDistinctDatacenter) {
  const SimConfig config = one_partition();
  const PartitionId p{0};
  auto sim = test::make_fixed_sim({QueryFlow{p, DatacenterId{2}, 1.0}},
                                  std::make_unique<OwnerOrientedPolicy>(),
                                  config);
  for (int e = 0; e < 4; ++e) sim->step();
  ASSERT_GE(sim->cluster().replica_count(p), 2u);

  const ServerId holder = sim->cluster().primary_of(p);
  const DatacenterId home = sim->topology().server(holder).datacenter;
  double nearest = 1e18;
  DatacenterId nearest_dc;
  for (const Datacenter& dc : sim->topology().datacenters()) {
    if (dc.id == home) continue;
    const double d = sim->topology().distance_km(home, dc.id);
    if (d < nearest) {
      nearest = d;
      nearest_dc = dc.id;
    }
  }
  EXPECT_FALSE(sim->cluster().hosts_in_dc(p, nearest_dc).empty());
}

TEST(OwnerPolicy, CopiesMaximizeGeographicDiversity) {
  // While fresh datacenters remain, no datacenter hosts two copies.
  const SimConfig config = one_partition();
  const PartitionId p{0};
  auto sim = test::make_fixed_sim({QueryFlow{p, DatacenterId{8}, 12.0}},
                                  std::make_unique<OwnerOrientedPolicy>(),
                                  config);
  for (int e = 0; e < 25; ++e) sim->step();
  const std::uint32_t r = sim->cluster().replica_count(p);
  if (r <= sim->topology().datacenter_count()) {
    std::set<std::uint32_t> dcs;
    for (const Replica& replica : sim->cluster().replicas_of(p)) {
      dcs.insert(sim->topology().server(replica.server).datacenter.value());
    }
    EXPECT_EQ(dcs.size(), r) << "duplicate datacenter before all are used";
  }
}

TEST(OwnerPolicy, NoMigrationUnderStableMembership) {
  SimConfig config;
  config.partitions = 8;
  WorkloadParams params;
  params.partitions = 8;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<OwnerOrientedPolicy>());
  for (int e = 0; e < 80; ++e) {
    EXPECT_EQ(sim->step().migrations, 0u);
  }
}

TEST(OwnerPolicy, NeverSuicides) {
  SimConfig config;
  config.partitions = 4;
  WorkloadParams params;
  params.partitions = 4;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<OwnerOrientedPolicy>());
  for (int e = 0; e < 60; ++e) {
    EXPECT_EQ(sim->step().suicides, 0u);
  }
}

TEST(RequestPolicy, CopiesLiveAtTopRequesterDatacenters) {
  const SimConfig config = one_partition();
  const PartitionId p{0};
  // All demand from two datacenters: copies must appear exactly there.
  auto sim = test::make_fixed_sim(
      {QueryFlow{p, DatacenterId{8}, 10.0}, QueryFlow{p, DatacenterId{6}, 8.0}},
      std::make_unique<RequestOrientedPolicy>(), config);
  for (int e = 0; e < 25; ++e) sim->step();

  const ServerId holder = sim->cluster().primary_of(p);
  const DatacenterId home = sim->topology().server(holder).datacenter;
  for (const Replica& replica : sim->cluster().replicas_of(p)) {
    if (replica.primary) continue;
    const DatacenterId dc = sim->topology().server(replica.server).datacenter;
    EXPECT_TRUE(dc == DatacenterId{8} || dc == DatacenterId{6} || dc == home)
        << "copy at a datacenter nobody queries from (dc "
        << dc.value() << ")";
  }
}

TEST(RequestPolicy, StructurallyCappedAtTopSetPlusPrimary) {
  const SimConfig config = one_partition();
  const PartitionId p{0};
  // Overwhelming demand from a single datacenter: the scheme still only
  // keeps copies in its top-3 requester datacenters (at most one each).
  auto sim = test::make_fixed_sim({QueryFlow{p, DatacenterId{8}, 200.0}},
                                  std::make_unique<RequestOrientedPolicy>(),
                                  config);
  for (int e = 0; e < 40; ++e) sim->step();
  EXPECT_LE(sim->cluster().replica_count(p), 4u);  // top-3 + primary
}

TEST(RequestPolicy, MigratesWhenTheCrowdMoves) {
  const SimConfig config = one_partition();
  const PartitionId p{0};
  std::vector<QueryBatch> schedule;
  for (int e = 0; e < 50; ++e) {
    schedule.push_back({QueryFlow{p, DatacenterId{8}, 15.0},
                        QueryFlow{p, DatacenterId{9}, 12.0}});
  }
  // Three fresh hot datacenters: the new top-3 fully evicts the old
  // requester set, so the stranded copies must be migrated, not merely
  // supplemented.
  for (int e = 0; e < 80; ++e) {
    schedule.push_back({QueryFlow{p, DatacenterId{1}, 15.0},
                        QueryFlow{p, DatacenterId{2}, 12.0},
                        QueryFlow{p, DatacenterId{3}, 10.0}});
  }
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<test::ScheduledWorkload>(schedule),
      std::make_unique<RequestOrientedPolicy>());
  std::uint32_t migrations = 0;
  for (int e = 0; e < 130; ++e) migrations += sim->step().migrations;
  EXPECT_GT(migrations, 0u);
  // After the shift, a copy serves the new crowd.
  const bool near_new_crowd =
      !sim->cluster().hosts_in_dc(p, DatacenterId{1}).empty() ||
      !sim->cluster().hosts_in_dc(p, DatacenterId{2}).empty();
  EXPECT_TRUE(near_new_crowd);
}

TEST(RequestPolicy, MigrationBudgetBoundsPerEpochMoves) {
  SimConfig config;
  config.partitions = 16;
  std::vector<QueryBatch> schedule;
  QueryBatch phase1;
  QueryBatch phase2;
  for (std::uint32_t p = 0; p < 16; ++p) {
    phase1.push_back(QueryFlow{PartitionId{p}, DatacenterId{8}, 10.0});
    phase2.push_back(QueryFlow{PartitionId{p}, DatacenterId{1}, 10.0});
  }
  for (int e = 0; e < 40; ++e) schedule.push_back(phase1);
  for (int e = 0; e < 60; ++e) schedule.push_back(phase2);
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<test::ScheduledWorkload>(schedule),
      std::make_unique<RequestOrientedPolicy>(
          /*top_requesters=*/3, /*max_migrations_per_epoch=*/2));
  for (int e = 0; e < 100; ++e) {
    EXPECT_LE(sim->step().migrations, 2u);
  }
}

TEST(PolicyNames, AreStable) {
  EXPECT_EQ(RandomPolicy().name(), "Random");
  EXPECT_EQ(OwnerOrientedPolicy().name(), "Owner");
  EXPECT_EQ(RequestOrientedPolicy().name(), "Request");
}

}  // namespace
}  // namespace rfh
