// Weighted log-bucketed histogram for latency distributions.
//
// The paper's motivation cites Amazon's SLA — "a response within 300 ms
// for 99.9 % of requests" — so the simulator tracks per-query latency and
// needs cheap percentile estimates over fractional query weights.
// Buckets are geometric between kMinValue and kMaxValue; percentile
// queries interpolate linearly within the winning bucket.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rfh {

class Histogram {
 public:
  static constexpr double kMinValue = 0.1;      // 0.1 ms
  static constexpr double kMaxValue = 100000.0; // 100 s
  static constexpr std::size_t kBuckets = 256;
  /// Default quantile grid for telemetry snapshots (registry exports,
  /// bench reports).
  static constexpr std::array<double, 4> kSnapshotQuantiles{0.5, 0.9, 0.99,
                                                            0.999};

  Histogram() noexcept { reset(); }

  void reset() noexcept {
    weights_.fill(0.0);
    total_weight_ = 0.0;
    weighted_sum_ = 0.0;
    max_value_ = 0.0;
  }

  /// Record `weight` observations of `value` (values are clamped into
  /// [kMinValue, kMaxValue]).
  void add(double weight, double value) noexcept;

  /// Smallest value v such that at least q of the total weight is <= v.
  /// q in (0, 1]; returns 0 for an empty histogram.
  [[nodiscard]] double percentile(double q) const noexcept;

  /// Fraction of the weight at or below `value` (1.0 when empty: an SLA
  /// over zero requests is trivially met).
  [[nodiscard]] double fraction_at_or_below(double value) const noexcept;

  /// percentile() over an ascending grid of quantiles in one bucket pass;
  /// element i equals percentile(qs[i]) exactly. All zeros when empty.
  [[nodiscard]] std::vector<double> quantiles(
      std::span<const double> qs) const;

  /// Append a one-line JSON snapshot — {"count":...,"mean":...,
  /// "max":...,"quantiles":{"0.5":...}} — for the metric registry and
  /// bench reports. `count` is the total observation weight.
  void append_json(std::string& out, std::span<const double> qs) const;
  [[nodiscard]] std::string to_json(
      std::span<const double> qs = kSnapshotQuantiles) const;

  [[nodiscard]] double mean() const noexcept {
    return total_weight_ > 0.0 ? weighted_sum_ / total_weight_ : 0.0;
  }
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }
  [[nodiscard]] double max_value() const noexcept { return max_value_; }
  [[nodiscard]] bool empty() const noexcept { return total_weight_ == 0.0; }

  /// Merge another histogram into this one.
  void merge(const Histogram& other) noexcept;

 private:
  [[nodiscard]] static std::size_t bucket_of(double value) noexcept;
  /// Lower edge of bucket i (geometric spacing).
  [[nodiscard]] static double bucket_lo(std::size_t i) noexcept;
  [[nodiscard]] static double bucket_hi(std::size_t i) noexcept;

  std::array<double, kBuckets> weights_{};
  double total_weight_ = 0.0;
  double weighted_sum_ = 0.0;
  double max_value_ = 0.0;
};

}  // namespace rfh
