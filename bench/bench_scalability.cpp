// Large-N scaling of the intra-epoch parallel engine.
//
// The paper simulates 10 datacenters x 10 servers. This bench builds
// synthetic ring+chord worlds of 100-server datacenters at 1k / 10k /
// 100k total servers (partitions and demand scaled proportionally) and
// reports epochs/sec for RFH — serial, and again with the engine sharded
// across a thread pool (Simulation::set_jobs) when more than one worker
// is available. The threaded pass must reproduce the serial per-epoch
// metrics bit-for-bit; any mismatch fails the bench.
//
// Usage:
//   bench_scalability [--smoke] [--jobs=N] [--profile]
//
// --smoke shrinks the sweep to 200/500-server worlds for CI, where
// scripts/bench_diff.py gates the n*_epoch_ms metrics against the
// committed bench/results/BENCH_scalability.json baseline.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_args.h"
#include "bench_report.h"
#include "core/rfh_policy.h"
#include "exec/thread_pool.h"
#include "metrics/collector.h"
#include "sim/engine.h"
#include "telemetry/profiler.h"
#include "topology/world.h"
#include "workload/generator.h"

namespace {

struct SizePoint {
  std::uint32_t n_dcs;
  rfh::Epoch warmup;
  rfh::Epoch measured;
};

// A fingerprint of everything the engine computes per epoch; two runs
// that agree on every field of every epoch ran the same simulation.
struct EpochDigest {
  double utilization;
  double unserved;
  double path_length;
  double latency_ms;
  double replicas;

  bool operator==(const EpochDigest&) const = default;
};

struct RunResult {
  double epoch_ms = 0.0;
  std::vector<EpochDigest> digests;
  double utilization_tail = 0.0;
  double unserved_tail = 0.0;
};

// One fresh simulation over `size`, stepping warmup + measured epochs and
// timing the measured span. Deterministic: the world/workload seeds are
// fixed, so two calls with different `jobs` must produce equal digests.
RunResult run_once(const SizePoint& size, unsigned jobs,
                   rfh::BenchReport& report, const std::string& stage_name,
                   bool profile) {
  rfh::WorldOptions world_options;
  world_options.rooms_per_datacenter = 2;
  world_options.racks_per_room = 5;
  world_options.servers_per_rack = 10;  // 100 servers per datacenter

  rfh::SimConfig config;
  config.partitions = 8 * size.n_dcs;
  rfh::WorkloadParams params;
  params.partitions = config.partitions;
  params.datacenters = size.n_dcs;
  params.mean_queries_per_epoch = 30.0 * size.n_dcs;

  // Log-spaced chords keep the inter-DC diameter O(log n) — a thin ring
  // at 1000 DCs would mean >100-hop query paths, which no real backbone
  // has, and which would swamp the bench with path-walk cost.
  std::vector<std::uint32_t> strides;
  for (std::uint32_t s = 8; s < size.n_dcs; s *= 8) strides.push_back(s);
  rfh::Simulation sim(
      rfh::build_synthetic_world(size.n_dcs, world_options, strides), config,
      std::make_unique<rfh::UniformWorkload>(params),
      std::make_unique<rfh::RfhPolicy>());
  sim.set_jobs(jobs);
  rfh::PhaseProfiler profiler;
  if (profile) sim.set_profiler(&profiler);
  sim.run(size.warmup);

  RunResult result;
  rfh::MetricsCollector collector;
  result.digests.reserve(size.measured);
  const auto start = std::chrono::steady_clock::now();
  {
    const auto stage = report.stage(stage_name);
    for (rfh::Epoch e = 0; e < size.measured; ++e) {
      const rfh::EpochMetrics m = collector.collect(sim, sim.step());
      result.digests.push_back(EpochDigest{
          m.utilization, m.unserved_fraction, m.path_length,
          m.latency_mean_ms, static_cast<double>(m.total_replicas)});
    }
  }
  const auto elapsed = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  result.epoch_ms = elapsed / static_cast<double>(size.measured);

  const std::size_t tail =
      std::min<std::size_t>(size.measured / 2 + 1, result.digests.size());
  for (std::size_t i = result.digests.size() - tail;
       i < result.digests.size(); ++i) {
    result.utilization_tail += result.digests[i].utilization;
    result.unserved_tail += result.digests[i].unserved;
  }
  result.utilization_tail /= static_cast<double>(tail);
  result.unserved_tail /= static_cast<double>(tail);
  if (profile) {
    profiler.finalize();
    std::printf("# --- %s phase breakdown ---\n", stage_name.c_str());
    profiler.write_table(std::cout, "# ");
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--profile") == 0) profile = true;
  }
  const unsigned jobs_flag = rfh::bench_jobs(argc, argv);
  const unsigned jobs =
      jobs_flag == 0 ? rfh::ThreadPool::default_jobs() : jobs_flag;

  // Epoch budgets shrink with N so the full sweep stays minutes, not
  // hours; the 100k point must still clear >1 epochs/sec (ROADMAP). The
  // smoke points are sized so every timed stage clears bench_diff's 1 ms
  // jitter floor.
  const std::vector<SizePoint> sizes =
      smoke ? std::vector<SizePoint>{{5, 20, 40}, {10, 40, 80}}
            : std::vector<SizePoint>{{10, 40, 80}, {100, 10, 20},
                                     {1000, 3, 8}};

  rfh::BenchReport report("scalability");
  std::printf("# RFH large-N scaling (100-server DCs, demand 30 "
              "queries/epoch per DC, jobs=%u)\n", jobs);
  std::printf("%8s %11s %13s %13s %8s %11s %10s\n", "servers", "partitions",
              "serial ep/s", "jobs ep/s", "speedup", "utilization",
              "unserved");

  bool identical = true;
  for (const SizePoint& size : sizes) {
    const std::uint32_t servers = 100 * size.n_dcs;
    // += instead of operator+ on temporaries: GCC 12 -O3 raises a
    // spurious -Wrestrict on the latter (PR105651).
    std::string n("n");
    n += std::to_string(servers);

    const RunResult serial = run_once(size, 1, report, "serial_" + n,
                                      profile);
    report.add_metric(n + "_epoch_ms", serial.epoch_ms);
    report.add_metric("utilization_" + n, serial.utilization_tail);
    report.add_metric("unserved_" + n, serial.unserved_tail);

    double jobs_eps = 0.0;
    double speedup = 1.0;
    if (jobs > 1) {
      const RunResult threaded = run_once(size, jobs, report, "jobs_" + n,
                                          profile);
      report.add_metric(n + "_jobs_epoch_ms", threaded.epoch_ms);
      jobs_eps = 1000.0 / threaded.epoch_ms;
      speedup = serial.epoch_ms / threaded.epoch_ms;
      if (threaded.digests != serial.digests) {
        identical = false;
        std::fprintf(stderr,
                     "FAIL: %s: jobs=%u per-epoch metrics diverge from "
                     "serial\n", n.c_str(), jobs);
      }
    }

    std::printf("%8u %11u %13.2f %13.2f %7.2fx %11.3f %10.3f\n", servers,
                8 * size.n_dcs, 1000.0 / serial.epoch_ms, jobs_eps, speedup,
                serial.utilization_tail, serial.unserved_tail);
  }

  report.write_file();
  if (!identical) return 1;
  return 0;
}
