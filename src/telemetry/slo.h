// Declarative service-level objectives with multi-window burn-rate
// alerting — the watchdog side of the causal flight recorder.
//
// An SloSpec declares up to four objectives over the per-epoch series:
// an availability floor (served fraction of offered queries), a ceiling
// on the streaming p99 latency, a ceiling on the migration rate, and a
// ceiling on the drop rate. Each epoch the caller feeds the watchdog one
// SloSample; the watchdog converts every enabled objective's signal into
// a *burn rate* — how fast the error budget is being consumed, where 1.0
// means "exactly at budget" — and averages it over a short and a long
// window (the SRE multi-window pattern: the short window reacts fast,
// the long window suppresses one-epoch blips). When both windows exceed
// the alert threshold the watchdog enters breach: it appends an
// SloBreachRecord, emits one SloBreach event (chained to the ambient
// disturbance, so forensic queries connect "SLO burned" to "link went
// down"), and bumps rfh_slo_breaches_total{objective=...}. Breaches are
// edge-triggered — one per episode, re-armed when the short window
// recovers below threshold.
//
// Everything here is observational and deterministic: the watchdog never
// feeds simulation state, and its breach sequence is a pure function of
// the sample series, so sweep digests over it are byte-identical across
// --jobs (tests/determinism_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "obs/event_bus.h"

namespace rfh {

class MetricRegistry;

enum class SloObjective : std::uint8_t {
  kAvailability = 0,  // floor on served fraction
  kStreamP99,         // ceiling on streaming p99 latency (ms)
  kMigrationRate,     // ceiling on migrations per epoch
  kDropRate,          // ceiling on the dropped-query fraction
};
inline constexpr std::size_t kSloObjectiveCount = 4;

/// Static-duration objective name: "availability", "stream_p99",
/// "migration_rate", "drop_rate".
[[nodiscard]] const char* slo_objective_name(SloObjective objective) noexcept;

/// Declarative objective set. A negative target disables its objective;
/// the default spec has everything disabled.
struct SloSpec {
  /// Floor on the served fraction (e.g. 0.999 = three nines).
  double availability_floor = -1.0;
  /// Ceiling on the per-epoch streaming p99 latency, in ms.
  double stream_p99_ms = -1.0;
  /// Ceiling on migrations per epoch.
  double migrations_per_epoch = -1.0;
  /// Ceiling on the dropped-query fraction (stream backpressure drops /
  /// arrivals, or the unserved fraction in batch mode).
  double drop_rate = -1.0;
  /// Burn-rate windows, in epochs, and the alert threshold both windowed
  /// means must cross.
  std::uint32_t short_window = 5;
  std::uint32_t long_window = 60;
  double burn_threshold = 1.5;

  [[nodiscard]] bool enabled() const noexcept {
    return availability_floor >= 0.0 || stream_p99_ms >= 0.0 ||
           migrations_per_epoch >= 0.0 || drop_rate >= 0.0;
  }
  [[nodiscard]] bool objective_enabled(SloObjective objective) const noexcept;
  /// The objective's declared target (floor or ceiling; negative when
  /// disabled).
  [[nodiscard]] double target(SloObjective objective) const noexcept;
};

/// Parse result for the --slo=<spec> grammar (mirrors FaultPlan::parse):
/// comma-separated key=value pairs with keys avail, p99, migrations,
/// drops, short, long, burn — e.g. "avail=0.999,p99=350,burn=2".
struct SloParseResult {
  bool ok = false;
  std::string error;
  SloSpec spec;
};
[[nodiscard]] SloParseResult parse_slo(std::string_view text);

/// One epoch's objective signals, as the caller measured them.
struct SloSample {
  double availability = 1.0;
  double stream_p99_ms = 0.0;
  double migrations = 0.0;
  double drop_rate = 0.0;

  [[nodiscard]] double signal(SloObjective objective) const noexcept;
};

/// One breach episode (the trace's SloBreach event, kept structurally for
/// harness results and sweep digests).
struct SloBreachRecord {
  Epoch epoch = 0;
  SloObjective objective = SloObjective::kAvailability;
  /// Long-window mean of the raw signal vs the declared target.
  double observed = 0.0;
  double target = 0.0;
  double burn_short = 0.0;
  double burn_long = 0.0;
  /// Cause id of the emitted SloBreach event (0 without a bus/sink).
  std::uint64_t cause_id = 0;

  friend bool operator==(const SloBreachRecord&,
                         const SloBreachRecord&) = default;
};

class SloWatchdog {
 public:
  /// `bus`, when non-null, receives one SloBreach event per episode;
  /// `registry`, when non-null, gets rfh_slo_breaches_total{objective=}.
  explicit SloWatchdog(const SloSpec& spec, EventBus* bus = nullptr,
                       MetricRegistry* registry = nullptr);

  /// Feed one epoch's signals; evaluates every enabled objective.
  void observe(Epoch epoch, const SloSample& sample);

  [[nodiscard]] const SloSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<SloBreachRecord>& breaches()
      const noexcept {
    return breaches_;
  }
  /// Whether the objective is currently in a breach episode.
  [[nodiscard]] bool in_breach(SloObjective objective) const noexcept {
    return in_breach_[static_cast<std::size_t>(objective)];
  }
  /// Current burn rates (short, long windowed means) for an objective.
  [[nodiscard]] double burn_short(SloObjective objective) const noexcept;
  [[nodiscard]] double burn_long(SloObjective objective) const noexcept;

  /// FNV-1a fingerprint of the breach sequence — the determinism witness
  /// sweep digests fold in.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  /// Error-budget burn rate of one observation: (1 - availability) /
  /// (1 - floor) for the floor objective, observed / ceiling for the
  /// ceilings. 1.0 = consuming budget exactly at the sustainable rate.
  [[nodiscard]] double burn_of(SloObjective objective,
                               double signal) const noexcept;
  /// Mean of the last `window` entries (or all, when shorter).
  [[nodiscard]] static double window_mean(const std::vector<double>& series,
                                          std::uint32_t window) noexcept;

  SloSpec spec_;
  EventBus* bus_;
  MetricRegistry* registry_ = nullptr;
  /// Raw signal history per objective (index = epoch order observed).
  std::array<std::vector<double>, kSloObjectiveCount> signals_;
  /// Burn history per objective, same indexing.
  std::array<std::vector<double>, kSloObjectiveCount> burns_;
  std::array<bool, kSloObjectiveCount> in_breach_{};
  std::vector<SloBreachRecord> breaches_;
};

}  // namespace rfh
