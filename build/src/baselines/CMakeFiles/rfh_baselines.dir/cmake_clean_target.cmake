file(REMOVE_RECURSE
  "librfh_baselines.a"
)
