#include "net/graph.h"

#include <algorithm>

#include "common/assert.h"

namespace rfh {

DcGraph::DcGraph(std::size_t datacenter_count, std::span<const Link> links)
    : adjacency_(datacenter_count) {
  for (const Link& link : links) {
    RFH_ASSERT(link.a.value() < datacenter_count);
    RFH_ASSERT(link.b.value() < datacenter_count);
    RFH_ASSERT_MSG(link.a != link.b, "self-loop link");
    RFH_ASSERT_MSG(link.km > 0.0, "link weight must be positive");
    adjacency_[link.a.value()].push_back(Edge{link.b, link.km});
    adjacency_[link.b.value()].push_back(Edge{link.a, link.km});
  }
  // Deterministic neighbor order regardless of input link order.
  for (auto& edges : adjacency_) {
    std::sort(edges.begin(), edges.end(),
              [](const Edge& x, const Edge& y) { return x.to < y.to; });
  }
}

std::span<const Edge> DcGraph::neighbors(DatacenterId dc) const {
  RFH_ASSERT(dc.value() < adjacency_.size());
  return adjacency_[dc.value()];
}

bool DcGraph::connected() const {
  if (adjacency_.empty()) return true;
  std::vector<bool> seen(adjacency_.size(), false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t at = stack.back();
    stack.pop_back();
    for (const Edge& e : adjacency_[at]) {
      if (!seen[e.to.value()]) {
        seen[e.to.value()] = true;
        ++visited;
        stack.push_back(e.to.value());
      }
    }
  }
  return visited == adjacency_.size();
}

}  // namespace rfh
