file(REMOVE_RECURSE
  "librfh_common.a"
)
