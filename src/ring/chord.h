// Chord-style overlay lookup with finger tables.
//
// The paper states "The cost of routing is O(log n)" for its
// Oceanstore-like prefix routing. This module implements the classic
// Chord lookup (finger table of successors at power-of-two distances,
// greedy closest-preceding-finger forwarding) over the same 64-bit hash
// space as HashRing, so the O(log n) claim is checkable as a property
// (tests assert hop counts across ring sizes) and measurable as a
// microbenchmark.
//
// The overlay is a static snapshot of the membership: the simulator
// rebuilds it on membership change (node churn is modelled at epoch
// granularity, where full rebuilds are cheap and deterministic).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"

namespace rfh {

class ChordOverlay {
 public:
  /// One position per member, derived from the server id hash (distinct
  /// members always get distinct positions).
  explicit ChordOverlay(std::span<const ServerId> members);

  struct LookupResult {
    ServerId owner;
    /// Overlay forwarding hops (0 when the origin already owns the key).
    std::uint32_t hops = 0;
    /// The nodes visited, origin first, owner last.
    std::vector<ServerId> path;
  };

  /// Greedy finger-table lookup starting at `from` (must be a member).
  [[nodiscard]] LookupResult lookup(ServerId from, std::uint64_t key) const;

  /// The member responsible for `key` (first position at or after it,
  /// wrapping).
  [[nodiscard]] ServerId successor(std::uint64_t key) const;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Ring position of a member (exposed for tests).
  [[nodiscard]] static std::uint64_t position_of(ServerId member);

 private:
  struct Node {
    std::uint64_t position = 0;
    ServerId id;
    /// fingers[i] = index (into nodes_) of successor(position + 2^i).
    std::vector<std::uint32_t> fingers;
  };

  /// Index of the node owning `key`.
  [[nodiscard]] std::uint32_t successor_index(std::uint64_t key) const;
  [[nodiscard]] std::uint32_t index_of_member(ServerId member) const;

  std::vector<Node> nodes_;  // sorted by position
};

}  // namespace rfh
