// End-to-end causal-chain reconstruction (the rfh_blackbox contract):
// run full scenarios under FaultPlan chaos with a TimelineStore recorder
// attached, then assert the forensic queries recover complete
// injection -> mechanism -> outcome chains for each fault family.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "fault/plan.h"
#include "harness/runner.h"
#include "obs/timeline.h"

namespace rfh {
namespace {

Scenario base_scenario(Epoch epochs, std::uint64_t seed) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = epochs;
  scenario.sim.seed = seed;
  scenario.world.seed = seed;
  return scenario;
}

/// Run the scenario with a fresh recorder; the store outlives the run.
void fly(const Scenario& scenario, TimelineStore& store) {
  (void)run_policy(scenario, PolicyKind::kRfh, {}, RfhPolicy::Options{},
                   /*trace_sink=*/nullptr, /*metrics=*/nullptr,
                   /*profiler=*/nullptr, /*checker=*/nullptr, &store);
}

bool is_fault(const TimelineRecord& rec, const char* kind) {
  return rec.type == event_type_index<FaultInjected>() &&
         rec.label != nullptr && std::strcmp(rec.label, kind) == 0;
}

/// Count records of `outcome_type` whose chain walks back through a
/// ServerFailed link to a FaultInjected root of the given kind — the
/// full "chaos injected X -> server died -> partition reacted" story.
std::size_t complete_chains(const TimelineQuery& query,
                            std::uint8_t outcome_type, const char* kind) {
  std::size_t complete = 0;
  for (const TimelineRecord& rec : query.records()) {
    if (rec.type != outcome_type) continue;
    const std::vector<TimelineRecord> chain = query.chain(rec.id);
    if (chain.size() < 3) continue;
    if (!is_fault(chain.front(), kind)) continue;
    bool through_failure = false;
    for (const TimelineRecord& link : chain) {
      if (link.type == event_type_index<ServerFailed>()) {
        through_failure = true;
      }
    }
    if (through_failure && chain.back().id == rec.id) ++complete;
  }
  return complete;
}

TEST(BlackboxChainTest, MassCrashChainsPromotionsToInjection) {
  Scenario scenario = base_scenario(30, 7);
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.at = 10;
  crash.count = 25;
  scenario.fault_plan.add(crash);
  TimelineStore store(scenario.sim.partitions);
  fly(scenario, store);
  const TimelineQuery query(store);

  // The injection itself is in the record...
  std::size_t injections = 0;
  for (const TimelineRecord& rec : query.records()) {
    if (is_fault(rec, "crash")) ++injections;
  }
  EXPECT_EQ(injections, 1u);
  // ...and killing a quarter of the fleet forced failovers whose chains
  // walk all the way back to it: crash -> ServerFailed -> PrimaryPromoted.
  EXPECT_GT(complete_chains(query, event_type_index<PrimaryPromoted>(),
                            "crash"),
            0u);

  // why() at the crash epoch answers with a causal chain, not a bare
  // record, for at least one affected partition.
  bool found_causal_answer = false;
  for (std::uint32_t p = 0; p < scenario.sim.partitions; ++p) {
    const std::vector<TimelineRecord> chain = query.why(PartitionId{p}, 12);
    if (chain.size() >= 3 && is_fault(chain.front(), "crash")) {
      found_causal_answer = true;
      break;
    }
  }
  EXPECT_TRUE(found_causal_answer);
}

TEST(BlackboxChainTest, DatacenterOutageChainsThroughItsServers) {
  Scenario scenario = base_scenario(24, 11);
  FaultEvent outage;
  outage.kind = FaultKind::kDatacenterOutage;
  outage.at = 8;
  outage.dc = DatacenterId{1};
  outage.recover_after = 8;
  scenario.fault_plan.add(outage);
  TimelineStore store(scenario.sim.partitions);
  fly(scenario, store);
  const TimelineQuery query(store);

  // Every ServerFailed of the outage epoch is parented to the injection.
  const TimelineRecord* injection = nullptr;
  for (const TimelineRecord& rec : query.records()) {
    if (is_fault(rec, "outage")) injection = &rec;
  }
  ASSERT_NE(injection, nullptr);
  EXPECT_EQ(injection->dc, 1u);
  std::size_t outage_kills = 0;
  for (const TimelineRecord& rec : query.records()) {
    if (rec.type == event_type_index<ServerFailed>() &&
        rec.parent == injection->id) {
      ++outage_kills;
    }
  }
  EXPECT_EQ(outage_kills, static_cast<std::size_t>(injection->a))
      << "every kill of the outage should be parented to its injection";
  EXPECT_GT(outage_kills, 0u);
  // And the downstream reactions reconstruct completely.
  const std::size_t promoted = complete_chains(
      query, event_type_index<PrimaryPromoted>(), "outage");
  const std::size_t reseeded =
      complete_chains(query, event_type_index<Reseeded>(), "outage");
  EXPECT_GT(promoted + reseeded, 0u);
}

TEST(BlackboxChainTest, LinkDownChainsTopologyChangeToInjection) {
  Scenario scenario = base_scenario(24, 5);
  FaultEvent linkdown;
  linkdown.kind = FaultKind::kLinkDown;
  linkdown.at = 6;
  linkdown.link_a = DatacenterId{0};
  linkdown.link_b = DatacenterId{1};
  linkdown.restore_at = 14;
  scenario.fault_plan.add(linkdown);
  TimelineStore store(scenario.sim.partitions);
  fly(scenario, store);
  const TimelineQuery query(store);

  const TimelineRecord* injection = nullptr;
  const TimelineRecord* link_failed = nullptr;
  for (const TimelineRecord& rec : query.records()) {
    if (is_fault(rec, "linkdown")) injection = &rec;
    if (rec.type == event_type_index<LinkFailed>()) link_failed = &rec;
  }
  ASSERT_NE(injection, nullptr);
  ASSERT_NE(link_failed, nullptr);
  EXPECT_EQ(link_failed->parent, injection->id);
  const std::vector<TimelineRecord> chain = query.chain(link_failed->id);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_TRUE(is_fault(chain.front(), "linkdown"));
  // The injection shows up under both endpoint datacenters.
  EXPECT_FALSE(query.dc_records(DatacenterId{0}).empty());
  EXPECT_FALSE(query.dc_records(DatacenterId{1}).empty());
}

TEST(BlackboxChainTest, RollingChurnChainsEveryWave) {
  Scenario scenario = base_scenario(30, 13);
  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 4;
  churn.until = 28;
  churn.period = 4;
  churn.kill = 3;
  churn.recover = 2;
  scenario.fault_plan.add(churn);
  TimelineStore store(scenario.sim.partitions);
  fly(scenario, store);
  const TimelineQuery query(store);

  // One injection per wave: epochs 4, 8, ..., 24.
  std::vector<Epoch> wave_epochs;
  for (const TimelineRecord& rec : query.records()) {
    if (is_fault(rec, "churn")) wave_epochs.push_back(rec.epoch);
  }
  EXPECT_EQ(wave_epochs.size(), 6u);
  // Each wave's kills are parented to that wave's injection — chains
  // never cross waves.
  for (const TimelineRecord& rec : query.records()) {
    if (rec.type != event_type_index<ServerFailed>()) continue;
    const TimelineRecord* parent = query.find(rec.parent);
    ASSERT_NE(parent, nullptr) << "kill #" << rec.id << " has no parent";
    EXPECT_TRUE(is_fault(*parent, "churn"));
    EXPECT_EQ(parent->epoch, rec.epoch);
  }
}

TEST(BlackboxChainTest, SloBreachChainsToAmbientDisturbance) {
  // Churn from epoch 0 keeps an injection as the ambient cause, and a
  // deliberately tight migration ceiling guarantees the watchdog fires;
  // the breach must then chain back to chaos, not float as a root.
  Scenario scenario = base_scenario(30, 3);
  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 0;
  churn.until = 30;
  churn.period = 2;
  churn.kill = 2;
  churn.recover = 2;
  scenario.fault_plan.add(churn);
  scenario.slo.migrations_per_epoch = 0.2;
  scenario.slo.short_window = 1;
  scenario.slo.long_window = 2;
  TimelineStore store(scenario.sim.partitions);
  const PolicyRun run = run_policy(
      scenario, PolicyKind::kRfh, {}, RfhPolicy::Options{}, nullptr, nullptr,
      nullptr, nullptr, &store);
  ASSERT_FALSE(run.slo_breaches.empty());
  const TimelineQuery query(store);
  std::size_t chained = 0;
  for (const SloBreachRecord& breach : run.slo_breaches) {
    ASSERT_NE(breach.cause_id, 0u);
    const std::vector<TimelineRecord> chain = query.chain(breach.cause_id);
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.back().type, event_type_index<SloBreach>());
    if (chain.front().type == event_type_index<FaultInjected>()) ++chained;
  }
  EXPECT_GT(chained, 0u);
}

}  // namespace
}  // namespace rfh
