# Empty compiler generated dependencies file for rfh_workload.
# This may be replaced when dependencies are built.
