// Edge cases across modules that the mainline suites do not reach.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "consistency/tracker.h"
#include "ring/chord.h"
#include "test_util.h"

namespace rfh {
namespace {

TEST(EngineEdge, MigrationBandwidthBudgetIsEnforced) {
  // Partition size = migration bandwidth: a source server can move only
  // one copy per epoch; the second migration from the same source drops.
  SimConfig config;
  config.partitions = 2;
  WorldOptions options = test::uniform_world_options();
  config.partition_size = options.migration_bandwidth;

  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                    config, options);
  // Both partitions get a copy on the same source server, then both are
  // asked to migrate away in one epoch.
  ServerId source;
  for (const Server& s : probe->topology().servers()) {
    if (probe->cluster().can_accept(s.id, PartitionId{0}) &&
        probe->cluster().can_accept(s.id, PartitionId{1})) {
      source = s.id;
      break;
    }
  }
  ASSERT_TRUE(source.valid());
  ServerId target_a;
  ServerId target_b;
  for (const Server& s : probe->topology().servers()) {
    if (s.id == source) continue;
    if (!target_a.valid()) {
      target_a = s.id;
    } else if (s.id != target_a &&
               s.datacenter != probe->topology().server(target_a).datacenter) {
      target_b = s.id;
      break;
    }
  }

  Actions e0;
  e0.replications.push_back(ReplicateAction{PartitionId{0}, source, {}});
  e0.replications.push_back(ReplicateAction{PartitionId{1}, source, {}});
  Actions e1;
  e1.migrations.push_back(MigrateAction{PartitionId{0}, source, target_a, {}});
  e1.migrations.push_back(MigrateAction{PartitionId{1}, source, target_b, {}});
  auto sim = test::make_fixed_sim(
      {}, std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{e0, e1}),
      config, options);
  sim->step();
  const EpochReport report = sim->step();
  EXPECT_EQ(report.migrations, 1u);
  EXPECT_EQ(report.dropped_actions, 1u);
}

TEST(EngineEdge, SeedingSpreadsPrimariesUnderVnodeCap) {
  // max_vnodes = 1: the 64 primaries must land on 64 distinct servers
  // even though the raw ring owner may collide.
  SimConfig config;
  config.partitions = 64;
  WorldOptions options = test::uniform_world_options();
  options.max_vnodes = 1;
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                  config, options);
  std::set<ServerId> homes;
  for (std::uint32_t p = 0; p < 64; ++p) {
    homes.insert(sim->cluster().primary_of(PartitionId{p}));
  }
  EXPECT_EQ(homes.size(), 64u);
  for (const Server& s : sim->topology().servers()) {
    EXPECT_LE(sim->cluster().copies_on(s.id), 1u);
  }
}

TEST(ConsistencyEdge, DelaysBeyondHistoryClampToOldestRetained) {
  // A copy whose hop distance exceeds the history window still advances
  // (it sees the oldest retained version), it just lags more.
  const World world = build_paper_world(test::uniform_world_options());
  const DcGraph graph(world.topology.datacenter_count(), world.links);
  const ShortestPaths paths(graph);
  SimConfig config;
  config.partitions = 1;
  ClusterState cluster(world.topology, config);
  ConsistencyTracker tracker(1, static_cast<std::uint32_t>(
                                    world.topology.server_count()),
                             /*history=*/2);

  const PartitionId p{0};
  const ServerId primary{0};
  cluster.add_replica(p, primary, true);
  // Pick a copy several hops out (> history).
  ServerId far;
  for (const Datacenter& dc : world.topology.datacenters()) {
    if (paths.hop_count(world.topology.server(primary).datacenter, dc.id) >=
        3) {
      far = world.topology.servers_in(dc.id).front();
      break;
    }
  }
  ASSERT_TRUE(far.valid());
  cluster.add_replica(p, far);

  for (int e = 0; e < 10; ++e) {
    const std::vector<double> writes{2.0};
    tracker.advance(cluster, world.topology, paths, writes);
  }
  // With history 2, the copy lags (history-1) epochs' worth of writes
  // despite being 3+ hops away: clamped, monotone, never stuck at zero.
  EXPECT_GT(tracker.replica_version(p, far), 0.0);
  EXPECT_NEAR(tracker.lag(p, far), 2.0, 1e-9);
}

TEST(ChordEdge, SparseHighValuedMemberIds) {
  std::vector<ServerId> members{ServerId{5}, ServerId{100000},
                                ServerId{4000000000u}, ServerId{17}};
  const ChordOverlay overlay(members);
  Rng rng(71);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng.next();
    const ServerId owner = overlay.successor(key);
    for (const ServerId origin : members) {
      EXPECT_EQ(overlay.lookup(origin, key).owner, owner);
    }
  }
}

TEST(SamplerEdge, SingleWeightAlwaysWins) {
  const std::vector<double> weights{3.5};
  DiscreteSampler sampler(weights);
  Rng rng(72);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.sample(rng), 0u);
  }
  EXPECT_DOUBLE_EQ(sampler.probability(0), 1.0);
}

TEST(FlashCrowdEdge, NonQuarterStageCountsSplitEvenly) {
  const World world = build_paper_world();
  WorkloadParams params;
  params.partitions = 4;
  params.datacenters = 10;
  std::vector<FlashStage> stages(5);  // five stages over 100 epochs
  for (auto& stage : stages) stage.hot_share = 0.8;
  stages[0].hot_dcs = {world.by_letter('A')};
  FlashCrowdWorkload workload(params, stages, /*total_epochs=*/100);
  EXPECT_EQ(workload.stage_at(0), 0u);
  EXPECT_EQ(workload.stage_at(19), 0u);
  EXPECT_EQ(workload.stage_at(20), 1u);
  EXPECT_EQ(workload.stage_at(99), 4u);
  EXPECT_EQ(workload.stage_at(100), 4u);
}

TEST(TopologyEdge, MultiRoomLabelsCountRoomsAndRacks) {
  WorldOptions options;
  options.rooms_per_datacenter = 2;
  options.racks_per_room = 2;
  options.servers_per_rack = 2;
  const World world = build_paper_world(options);
  // Server index 4 of DC 0: room 2, rack 1, server 1.
  const auto& servers = world.topology.servers_in(world.dc[0]);
  ASSERT_EQ(servers.size(), 8u);
  EXPECT_EQ(world.topology.server(servers[4]).label.to_string(),
            "NA-USA-GA1-C02-R01-S1");
  // Same datacenter, different rooms: availability level 4.
  EXPECT_EQ(world.topology.availability_level(servers[0], servers[4]), 4u);
}

TEST(HistogramEdge, FullPercentileReturnsTopOfDistribution) {
  Histogram h;
  h.add(1.0, 5.0);
  h.add(1.0, 500.0);
  const double p100 = h.percentile(1.0);
  EXPECT_GE(p100, 490.0);  // within the top bucket
}

TEST(RouterEdge, RecoversWhenRelayDatacenterPartiallyDies) {
  // Kill all but one server of a transit datacenter: it must still relay
  // (and the surviving server becomes every partition's relay there).
  SimConfig config;
  config.partitions = 4;
  auto sim = test::make_fixed_sim(
      {QueryFlow{PartitionId{0}, DatacenterId{9}, 4.0}},
      std::make_unique<test::NullPolicy>(), config);
  const DatacenterId transit = sim->world().by_letter('I');
  const auto servers = sim->topology().servers_in(transit);
  std::vector<ServerId> victims(servers.begin(), servers.end() - 1);
  sim->fail_servers(victims);
  ASSERT_EQ(sim->cluster().live_by_dc()[transit.value()].size(), 1u);
  sim->step();  // routes through the survivor without issue
  sim->cluster().check_invariants();
}

}  // namespace
}  // namespace rfh
