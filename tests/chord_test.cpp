#include "ring/chord.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"

namespace rfh {
namespace {

std::vector<ServerId> members(std::uint32_t n) {
  std::vector<ServerId> out;
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(ServerId{i});
  return out;
}

TEST(Chord, SuccessorMatchesBruteForce) {
  const auto nodes = members(50);
  const ChordOverlay overlay(nodes);
  Rng rng(41);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.next();
    // Brute force: member with the smallest clockwise distance from key.
    ServerId best;
    std::uint64_t best_distance = 0;
    bool first = true;
    for (const ServerId m : nodes) {
      const std::uint64_t distance = ChordOverlay::position_of(m) - key;
      if (first || distance < best_distance) {
        best = m;
        best_distance = distance;
        first = false;
      }
    }
    EXPECT_EQ(overlay.successor(key), best);
  }
}

TEST(Chord, LookupFindsTheOwnerFromEveryOrigin) {
  const auto nodes = members(30);
  const ChordOverlay overlay(nodes);
  Rng rng(42);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t key = rng.next();
    const ServerId owner = overlay.successor(key);
    for (const ServerId origin : nodes) {
      const auto result = overlay.lookup(origin, key);
      ASSERT_EQ(result.owner, owner);
      EXPECT_EQ(result.path.front(), origin);
      EXPECT_EQ(result.path.back(), owner);
      EXPECT_EQ(result.path.size(), result.hops + 1);
    }
  }
}

TEST(Chord, SelfLookupIsZeroHops) {
  const auto nodes = members(20);
  const ChordOverlay overlay(nodes);
  for (const ServerId m : nodes) {
    const auto result = overlay.lookup(m, ChordOverlay::position_of(m));
    EXPECT_EQ(result.owner, m);
    EXPECT_EQ(result.hops, 0u);
  }
}

TEST(Chord, SingleNodeOwnsEverything) {
  const std::vector<ServerId> one{ServerId{7}};
  const ChordOverlay overlay(one);
  Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    const auto result = overlay.lookup(ServerId{7}, rng.next());
    EXPECT_EQ(result.owner, ServerId{7});
    EXPECT_EQ(result.hops, 0u);
  }
}

class ChordHopBoundTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChordHopBoundTest, HopsAreLogarithmic) {
  // "The cost of routing is O(log n)". Classic Chord bound: lookups take
  // O(log n) hops w.h.p.; we assert max <= 2*log2(n) + 4 and mean <=
  // log2(n) over a random key/origin sample.
  const std::uint32_t n = GetParam();
  const auto nodes = members(n);
  const ChordOverlay overlay(nodes);
  Rng rng(44);
  const double log2n = std::log2(static_cast<double>(n));
  double total_hops = 0.0;
  std::uint32_t max_hops = 0;
  const int samples = 2000;
  for (int i = 0; i < samples; ++i) {
    const ServerId origin{static_cast<std::uint32_t>(rng.uniform(n))};
    const auto result = overlay.lookup(origin, rng.next());
    total_hops += result.hops;
    max_hops = std::max(max_hops, result.hops);
  }
  EXPECT_LE(max_hops, static_cast<std::uint32_t>(2.0 * log2n + 4.0));
  EXPECT_LE(total_hops / samples, log2n);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, ChordHopBoundTest,
                         ::testing::Values<std::uint32_t>(2, 8, 32, 100, 512,
                                                          2048));

TEST(Chord, KeysSpreadAcrossMembers) {
  const auto nodes = members(20);
  const ChordOverlay overlay(nodes);
  std::set<ServerId> owners;
  Rng rng(45);
  for (int i = 0; i < 5000; ++i) {
    owners.insert(overlay.successor(rng.next()));
  }
  EXPECT_EQ(owners.size(), 20u);
}

TEST(ChordDeath, Misuse) {
  EXPECT_DEATH(ChordOverlay(std::vector<ServerId>{}), "");
  const auto nodes = members(5);
  const ChordOverlay overlay(nodes);
  EXPECT_DEATH((void)overlay.lookup(ServerId{99}, 1), "");  // non-member
}

}  // namespace
}  // namespace rfh
