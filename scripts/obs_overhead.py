#!/usr/bin/env python3
"""Observability-overhead smoke: gate the flight recorder's cost.

Consumes the google-benchmark JSON of bench_micro_events and reduces it
to per-event overhead *ratios* (recorder-enabled time over the
fully-disabled pointer-test path, and the recorder-attached sim step
over the sink-free one). Ratios — not absolute times — so the gate is
stable across machines; CI compares against the committed baseline and
fails when any ratio regressed by more than --threshold (default 25%).

Usage:
  build/bench/bench_micro_events --benchmark_format=json \
      --benchmark_out=events.json --benchmark_min_time=0.05
  scripts/obs_overhead.py events.json bench/results/obs_overhead_baseline.json
  scripts/obs_overhead.py events.json --write-baseline BASELINE.json

Exit status: 0 within budget, 1 overhead regression, 2 bad input.
"""

import argparse
import json
import sys

# ratio name -> (numerator benchmark, denominator benchmark)
RATIOS = {
    "emit_timeline_over_disabled": ("BM_EmitTimelineStore", "BM_EmitDisabled"),
    "emit_ring_over_disabled": ("BM_EmitRingBuffer", "BM_EmitDisabled"),
    "simstep_recorder_over_off": ("BM_SimStep_Recorder",
                                  "BM_SimStep_TracingOff"),
}


def load_times(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"obs_overhead: cannot read {path}: {exc}")
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = float(bench["cpu_time"])
    return times


def compute_ratios(times):
    ratios = {}
    for name, (num, den) in RATIOS.items():
        if num not in times or den not in times:
            sys.exit(f"obs_overhead: benchmark output is missing "
                     f"{num if num not in times else den!r}")
        if times[den] <= 0:
            sys.exit(f"obs_overhead: non-positive time for {den}")
        ratios[name] = times[num] / times[den]
    return ratios


def main():
    parser = argparse.ArgumentParser(
        description="Gate flight-recorder overhead ratios.")
    parser.add_argument("results",
                        help="bench_micro_events --benchmark_format=json "
                             "output")
    parser.add_argument("baseline", nargs="?",
                        help="committed baseline ratio file")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative ratio growth "
                             "(default 0.25 = +25%%)")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write the computed ratios as a new baseline "
                             "and exit")
    args = parser.parse_args()

    ratios = compute_ratios(load_times(args.results))

    if args.write_baseline:
        payload = {"schema": "rfh-obs-overhead/1", "ratios": ratios}
        with open(args.write_baseline, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        for name, value in sorted(ratios.items()):
            print(f"{name:<32} {value:8.3f}x")
        print(f"baseline written to {args.write_baseline}")
        return 0

    if not args.baseline:
        parser.error("need a baseline file (or --write-baseline)")
    try:
        with open(args.baseline, "r", encoding="utf-8") as fh:
            base = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"obs_overhead: cannot read {args.baseline}: {exc}")
    if base.get("schema") != "rfh-obs-overhead/1":
        sys.exit(f"obs_overhead: {args.baseline}: bad schema "
                 f"{base.get('schema')!r}")

    failed = []
    print(f"{'ratio':<32} {'baseline':>10} {'now':>10} {'change':>9}")
    for name, value in sorted(ratios.items()):
        reference = base["ratios"].get(name)
        if reference is None:
            print(f"{name:<32} {'-':>10} {value:9.3f}x   (new, no baseline)")
            continue
        growth = (value - reference) / reference
        flag = ""
        if growth > args.threshold:
            flag = "  << OVERHEAD REGRESSION"
            failed.append(name)
        print(f"{name:<32} {reference:9.3f}x {value:9.3f}x "
              f"{growth:+8.1%}{flag}")
    print()
    if failed:
        print(f"overhead regressions: {', '.join(failed)}")
        return 1
    print("recorder overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
