// Tests for the mean-field census oracle (check/mean_field.h): the
// closed-form two-state chain, convergence bookkeeping, degenerate
// boundaries, scenario-derived parameters, and a small-N engine run
// whose measured census must land near the analytic fixed point.
#include "check/mean_field.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/availability.h"
#include "core/rfh_policy.h"
#include "fault/chaos.h"
#include "fault/plan.h"
#include "harness/scenario.h"
#include "sim/engine.h"
#include "topology/world.h"
#include "workload/generator.h"

namespace rfh {
namespace {

// With r_target == max_replicas == 3 and instant repair, the chain only
// ever occupies {2, 3}: from 3, two-or-more deaths land at 2 (one death
// repairs back within the epoch); from 2, any death repairs back to 2
// and none climbs to 3. Detailed balance gives pi_2 = q / (q + r) with
// q = P(>=2 of 3 die) and r = P(0 of 2 die).
TEST(MeanField, TwoStateClosedForm) {
  MeanFieldParams params;
  params.death_prob = 0.1;
  params.repair_prob = 1.0;
  params.r_target = 3;
  params.max_replicas = 3;

  const double p = params.death_prob;
  const double q = 3.0 * p * p * (1.0 - p) + p * p * p;  // 3 -> 2
  const double r = (1.0 - p) * (1.0 - p);                // 2 -> 3
  const double pi2 = q / (q + r);

  const MeanFieldPrediction prediction = predict_census(params);
  ASSERT_TRUE(prediction.converged);
  ASSERT_EQ(prediction.census.size(), 4u);
  EXPECT_NEAR(prediction.census[2], pi2, 1e-10);
  EXPECT_NEAR(prediction.census[3], 1.0 - pi2, 1e-10);
  EXPECT_NEAR(prediction.census[0], 0.0, 1e-12);
  EXPECT_NEAR(prediction.census[1], 0.0, 1e-12);
  EXPECT_NEAR(prediction.expected_replicas, 3.0 - pi2, 1e-9);
  EXPECT_NEAR(prediction.expected_availability,
              pi2 * availability(2, params.failure_rate) +
                  (1.0 - pi2) * availability(3, params.failure_rate),
              1e-9);
}

TEST(MeanField, StationaryDistributionIsAFixedPointOfTheStep) {
  MeanFieldParams params;
  params.death_prob = 0.05;
  params.r_target = 4;
  params.max_replicas = 8;

  const MeanFieldPrediction prediction = predict_census(params);
  ASSERT_TRUE(prediction.converged);

  std::vector<double> next;
  mean_field_step(params, prediction.census, next);
  double mass = 0.0;
  for (std::size_t k = 0; k < next.size(); ++k) {
    EXPECT_NEAR(next[k], prediction.census[k], 1e-10) << "bin " << k;
    mass += next[k];
  }
  EXPECT_NEAR(mass, 1.0, 1e-12);  // the step conserves probability
}

TEST(MeanField, ZeroFailureStaysAtTheFloor) {
  MeanFieldParams params;
  params.death_prob = 0.0;
  params.r_target = 4;
  params.max_replicas = 16;

  const MeanFieldPrediction prediction = predict_census(params);
  ASSERT_TRUE(prediction.converged);
  EXPECT_DOUBLE_EQ(prediction.census[4], 1.0);
  EXPECT_DOUBLE_EQ(prediction.expected_replicas, 4.0);
  EXPECT_DOUBLE_EQ(prediction.expected_availability,
                   availability(4, params.failure_rate));
}

// With repair disabled every partition decays (reseeding at 1 copy on
// total loss) and the chain collapses onto the single-copy state.
TEST(MeanField, ZeroRepairCollapsesToOneCopy) {
  MeanFieldParams params;
  params.death_prob = 0.1;
  params.repair_prob = 0.0;
  params.r_target = 4;
  params.max_replicas = 8;

  const MeanFieldPrediction prediction = predict_census(params);
  ASSERT_TRUE(prediction.converged);
  EXPECT_NEAR(prediction.census[1], 1.0, 1e-9);
}

TEST(MeanField, ConvergenceFlagReportsIterationStarvation) {
  MeanFieldParams params;
  params.death_prob = 0.05;
  params.r_target = 4;
  params.max_replicas = 8;
  params.tolerance = 1e-30;  // unreachable in two iterations
  params.max_iterations = 2;

  const MeanFieldPrediction prediction = predict_census(params);
  EXPECT_FALSE(prediction.converged);
  EXPECT_EQ(prediction.iterations, 2u);
}

TEST(MeanField, FromScenarioDerivesTheChainFromPlanAndConfig) {
  Scenario scenario;
  scenario.epochs = 100;
  scenario.sim.failure_rate = 0.1;
  scenario.sim.min_availability = 0.9995;  // Eq. 14: r_min = 4

  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 0;
  churn.until = 100;
  churn.period = 1;
  churn.kill = 2;
  churn.recover = 2;
  scenario.fault_plan.add(churn);
  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.at = 10;
  crash.count = 50;
  scenario.fault_plan.add(crash);
  // Placement-correlated kills must NOT feed death_prob.
  FaultEvent zone;
  zone.kind = FaultKind::kZoneOutage;
  zone.at = 20;
  zone.zone = 3;
  scenario.fault_plan.add(zone);

  const MeanFieldParams params =
      MeanFieldParams::from_scenario(scenario, /*n_servers=*/100);
  EXPECT_EQ(params.r_target, 4u);
  EXPECT_DOUBLE_EQ(params.failure_rate, 0.1);
  // (2 kills/epoch * 100 epochs + 50 one-shot) / 100 epochs / 100 servers.
  EXPECT_NEAR(params.death_prob, 0.025, 1e-12);
}

TEST(MeanFieldCompare, PerfectAgreementIsZeroError) {
  MeanFieldParams params;
  params.death_prob = 0.02;
  params.r_target = 4;
  params.max_replicas = 8;
  const MeanFieldPrediction prediction = predict_census(params);

  // Feed the prediction back, scaled (compare normalizes internally).
  std::vector<double> sim(prediction.census);
  for (double& v : sim) v *= 12345.0;
  const CensusComparison cmp = compare(sim, prediction, params.failure_rate);
  EXPECT_NEAR(cmp.total_variation, 0.0, 1e-9);
  EXPECT_NEAR(cmp.max_bin_error, 0.0, 1e-9);
  EXPECT_NEAR(cmp.sim_expected_replicas, cmp.predicted_expected_replicas,
              1e-6);
}

TEST(MeanFieldCompare, ShorterHistogramIsZeroExtended) {
  MeanFieldParams params;
  params.death_prob = 0.0;
  params.r_target = 4;
  params.max_replicas = 8;
  const MeanFieldPrediction prediction = predict_census(params);  // delta_4

  const std::vector<double> sim = {0.0, 1.0};  // all mass at k = 1
  const CensusComparison cmp = compare(sim, prediction, params.failure_rate);
  ASSERT_EQ(cmp.per_bin_error.size(), prediction.census.size());
  EXPECT_NEAR(cmp.total_variation, 1.0, 1e-12);  // disjoint supports
  EXPECT_NEAR(cmp.per_bin_error[1], 1.0, 1e-12);
  EXPECT_NEAR(cmp.per_bin_error[4], -1.0, 1e-12);
}

// Small-N smoke of the real engine against the analytic fixed point —
// the miniature of `rfh_check --mode=meanfield`. 2.5% uniform churn on
// a 40-server world with the overload/migration/suicide rules disarmed;
// the measured census must land near pi (generous bound: at N=40 the
// finite-size error is the largest the oracle ever tolerates).
TEST(MeanFieldSim, SmallWorldCensusApproachesTheFixedPoint) {
  constexpr std::uint32_t kDcs = 4;
  constexpr std::uint32_t kServers = 40;  // 4 DCs x 10 servers
  constexpr Epoch kWarmup = 30;
  constexpr Epoch kMeasured = 300;

  Scenario scenario;
  scenario.world.rooms_per_datacenter = 1;
  scenario.world.racks_per_room = 2;
  scenario.world.servers_per_rack = 5;
  scenario.world.per_replica_capacity_lo = 1e9;  // Eq. 12 never trips
  scenario.world.per_replica_capacity_hi = 1e9;
  scenario.sim.partitions = 64;
  scenario.world.partitions_hint = 64;  // repairs never drop on caps
  scenario.sim.min_availability = 0.9995;  // r_min = 4
  scenario.sim.beta = 1e9;
  scenario.sim.gamma = 1e9;
  scenario.epochs = kWarmup + kMeasured;

  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = 0;
  churn.until = scenario.epochs;
  churn.period = 1;
  churn.kill = 1;  // 2.5% of the fleet per epoch
  churn.recover = 1;
  scenario.fault_plan.add(churn);

  WorkloadParams params;
  params.partitions = scenario.sim.partitions;
  params.datacenters = kDcs;
  params.mean_queries_per_epoch = 30.0 * kDcs;
  RfhPolicy::Options policy_options;
  policy_options.enable_migration = false;
  policy_options.enable_suicide = false;
  Simulation sim(build_synthetic_world(kDcs, scenario.world, {}),
                 scenario.sim, std::make_unique<UniformWorkload>(params),
                 std::make_unique<RfhPolicy>(policy_options));
  ChaosController chaos(scenario.fault_plan, scenario.sim.seed);

  std::vector<double> census(scenario.sim.max_replicas_per_partition + 1,
                             0.0);
  for (Epoch e = 0; e < scenario.epochs; ++e) {
    chaos.before_epoch(sim, e);
    sim.step();
    if (e < kWarmup) continue;
    for (std::uint32_t pv = 0; pv < scenario.sim.partitions; ++pv) {
      const std::size_t k = sim.cluster().replicas_of(PartitionId{pv}).size();
      census[std::min(k, census.size() - 1)] += 1.0;
    }
  }

  const MeanFieldPrediction prediction = predict_census(scenario, kServers);
  ASSERT_TRUE(prediction.converged);
  const CensusComparison cmp =
      compare(census, prediction, scenario.sim.failure_rate);
  EXPECT_LT(cmp.total_variation, 0.05)
      << "sim E[r]=" << cmp.sim_expected_replicas
      << " predicted=" << cmp.predicted_expected_replicas;
  EXPECT_NEAR(cmp.sim_expected_replicas, cmp.predicted_expected_replicas,
              0.1);
}

}  // namespace
}  // namespace rfh
