// Extension experiment — membership churn.
//
// Section II-B argues for the virtual ring because "node join or
// departure, failure or recovery only affects its immediate neighbors,
// and keep other nodes unaffected". This bench subjects RFH to sustained
// churn — every 10 epochs one random server dies and one previously dead
// server returns — and measures the blast radius: repair actions per
// churn event, steady-state census drift, and service impact, compared
// to a churn-free control run.
#include <cstdio>
#include <memory>

#include "core/rfh_policy.h"
#include "harness/scenario.h"
#include "metrics/collector.h"
#include "workload/generator.h"

namespace {

struct ChurnResult {
  double actions_per_epoch = 0.0;
  double replicas = 0.0;
  double unserved = 0.0;
  double utilization = 0.0;
};

ChurnResult run(bool with_churn) {
  const rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  rfh::World world = rfh::build_paper_world(scenario.world);
  auto sim = std::make_unique<rfh::Simulation>(
      std::move(world), scenario.sim,
      rfh::make_workload(scenario, rfh::build_paper_world(scenario.world)),
      std::make_unique<rfh::RfhPolicy>());
  rfh::MetricsCollector collector;

  sim->run(60);  // settle
  std::vector<rfh::ServerId> dead;
  ChurnResult result;
  const rfh::Epoch measured = 300;
  for (rfh::Epoch e = 0; e < measured; ++e) {
    if (with_churn && e % 10 == 0) {
      // One leaves...
      const auto victims = sim->fail_random_servers(1);
      dead.insert(dead.end(), victims.begin(), victims.end());
      // ...and (once somebody is dead) one returns.
      if (dead.size() > 1) {
        const rfh::ServerId back = dead.front();
        dead.erase(dead.begin());
        const rfh::ServerId recover[] = {back};
        sim->recover_servers(recover);
      }
    }
    const rfh::EpochReport r = sim->step();
    const rfh::EpochMetrics m = collector.collect(*sim, r);
    result.actions_per_epoch += r.replications + r.migrations + r.suicides;
    result.replicas += m.total_replicas;
    result.unserved += m.unserved_fraction;
    result.utilization += m.utilization;
  }
  result.actions_per_epoch /= measured;
  result.replicas /= measured;
  result.unserved /= measured;
  result.utilization /= measured;
  return result;
}

}  // namespace

int main() {
  std::printf("# Membership churn: one server leaves and one rejoins every "
              "10 epochs, 300 epochs measured (RFH)\n");
  std::printf("%-10s %16s %10s %10s %12s\n", "mode", "actions/epoch",
              "replicas", "unserved", "utilization");
  const ChurnResult control = run(false);
  const ChurnResult churned = run(true);
  std::printf("%-10s %16.2f %10.1f %10.3f %12.3f\n", "control",
              control.actions_per_epoch, control.replicas, control.unserved,
              control.utilization);
  std::printf("%-10s %16.2f %10.1f %10.3f %12.3f\n", "churn",
              churned.actions_per_epoch, churned.replicas, churned.unserved,
              churned.utilization);
  std::printf("# blast radius: %.2f extra repair actions per churn event "
              "(10-epoch spacing)\n",
              (churned.actions_per_epoch - control.actions_per_epoch) * 10.0);
  return 0;
}
