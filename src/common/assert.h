// Lightweight always-on assertion macro.
//
// Simulation correctness depends on internal invariants (traffic is never
// negative, storage accounting balances, ...). We keep these checks enabled
// in every build type: the simulator is small enough that the cost is
// negligible, and a silently-corrupted experiment is far more expensive
// than the branch.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rfh {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "RFH_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace rfh

#define RFH_ASSERT(expr)                                         \
  do {                                                           \
    if (!(expr)) ::rfh::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define RFH_ASSERT_MSG(expr, msg)                                \
  do {                                                           \
    if (!(expr)) ::rfh::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

// For impossible code paths (e.g. after an exhaustive if/switch in a
// non-void function). A bare RFH_ASSERT_MSG(false, ...) hides the
// [[noreturn]] behind a branch, which GCC's -fsanitize=thread pass fails
// to see through and then warns -Wreturn-type; the direct call keeps the
// noreturn visible in every build mode.
#define RFH_UNREACHABLE(msg) \
  ::rfh::assert_fail("unreachable", __FILE__, __LINE__, (msg))
