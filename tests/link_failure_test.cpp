// Network-failure injection: links go down, routes shift, hubs move, and
// RFH follows the traffic.
#include <gtest/gtest.h>

#include <memory>

#include "core/rfh_policy.h"
#include "test_util.h"

namespace rfh {
namespace {

TEST(LinkFailure, ReroutesAroundTheFailedLink) {
  SimConfig config;
  config.partitions = 1;
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                  config);
  const DatacenterId j = sim->world().by_letter('J');
  const DatacenterId i = sim->world().by_letter('I');
  const DatacenterId d = sim->world().by_letter('D');
  const DatacenterId a = sim->world().by_letter('A');

  // J -> A initially transits I then D.
  const auto before = sim->paths().path(j, a);
  ASSERT_GE(before.size(), 3u);
  EXPECT_EQ(before[1], i);

  // Cut the trans-Pacific link I-D: Osaka's traffic must re-route via
  // Beijing and Zurich.
  sim->fail_link(i, d);
  EXPECT_EQ(sim->failed_link_count(), 1u);
  const auto after = sim->paths().path(j, a);
  for (std::size_t k = 0; k + 1 < after.size(); ++k) {
    EXPECT_FALSE((after[k] == i && after[k + 1] == d) ||
                 (after[k] == d && after[k + 1] == i));
  }
  EXPECT_GT(sim->paths().distance_km(j, a), 0.0);

  // Restoration brings the original route back.
  sim->restore_link(i, d);
  EXPECT_EQ(sim->failed_link_count(), 0u);
  EXPECT_EQ(sim->paths().path(j, a), before);
}

TEST(LinkFailure, IsIdempotent) {
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  const DatacenterId i = sim->world().by_letter('I');
  const DatacenterId d = sim->world().by_letter('D');
  sim->fail_link(i, d);
  sim->fail_link(i, d);
  sim->fail_link(d, i);  // either orientation
  EXPECT_EQ(sim->failed_link_count(), 1u);
  sim->restore_link(d, i);
  sim->restore_link(i, d);
  EXPECT_EQ(sim->failed_link_count(), 0u);
}

TEST(LinkFailure, RefusesToPartitionTheNetwork) {
  auto sim = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>());
  // J's only link is J-I: cutting it would isolate Osaka.
  EXPECT_DEATH(sim->fail_link(sim->world().by_letter('J'),
                              sim->world().by_letter('I')),
               "");
}

TEST(LinkFailure, SimulationKeepsServingAcrossTheFailure) {
  SimConfig config;
  config.partitions = 4;
  QueryBatch demand;
  for (std::uint32_t p = 0; p < 4; ++p) {
    demand.push_back(QueryFlow{PartitionId{p}, DatacenterId{9}, 4.0});
  }
  auto sim = test::make_fixed_sim(demand, std::make_unique<RfhPolicy>(),
                                  config);
  sim->run(20);
  sim->fail_link(sim->world().by_letter('I'), sim->world().by_letter('D'));
  for (int e = 0; e < 30; ++e) sim->step();
  sim->cluster().check_invariants();
  // Demand from Osaka is still served via the detour.
  double unserved = 0.0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    unserved += sim->traffic().unserved(PartitionId{p});
  }
  EXPECT_LT(unserved, 4.0);  // far below the 16 queries/epoch offered
}

TEST(LinkFailure, TrafficHubsShiftWithTheRoutes) {
  // With the trans-Pacific link down, Osaka/Tokyo traffic flows through
  // Beijing and Zurich; RFH's hub copies must follow.
  SimConfig config;
  config.partitions = 1;
  const PartitionId p{0};
  QueryBatch demand{QueryFlow{p, DatacenterId{9}, 20.0},
                    QueryFlow{p, DatacenterId{8}, 10.0}};
  auto sim = test::make_fixed_sim(demand, std::make_unique<RfhPolicy>(),
                                  config);
  sim->run(30);

  sim->fail_link(sim->world().by_letter('I'), sim->world().by_letter('D'));
  for (int e = 0; e < 60; ++e) sim->step();

  // After re-adaptation some copy sits on the new route (H or F or C...).
  const auto new_route = sim->paths().path(
      DatacenterId{9},
      sim->topology().server(sim->cluster().primary_of(p)).datacenter);
  bool on_new_route = false;
  for (const Replica& r : sim->cluster().replicas_of(p)) {
    if (r.primary) continue;
    const DatacenterId dc = sim->topology().server(r.server).datacenter;
    for (const DatacenterId road : new_route) {
      if (dc == road) on_new_route = true;
    }
  }
  EXPECT_TRUE(on_new_route);
  EXPECT_LT(sim->traffic().unserved(p), 10.0);
}

}  // namespace
}  // namespace rfh
