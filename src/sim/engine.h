// The epoch-driven simulation engine.
//
// One step() is one epoch (Table I: 10 seconds of wall time):
//   1. the workload generator emits per-(partition, requester) demand;
//   2. every flow is routed along its fixed datacenter path and absorbed
//      by replicas along the way — the residual-traffic propagation of
//      Eqs. 2-8 at server granularity;
//   3. the smoothed statistics (Eqs. 9-11) are updated;
//   4. the installed replication policy decides actions;
//   5. the engine validates and applies the actions under liveness,
//      storage-limit (Eq. 19), virtual-node-cap and per-server
//      replication/migration bandwidth constraints, accounting each
//      transfer's cost per Eq. 1:  c = d * f * s / b.
//
// Failure injection (fail_servers / fail_random_servers / recover_servers)
// may be called between steps; lost primaries are promoted from surviving
// copies (highest smoothed traffic first), or re-seeded at the ring
// successor when no copy survives (counted as a data loss).
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "exec/arena.h"
#include "exec/thread_pool.h"
#include "obs/event_bus.h"
#include "telemetry/profiler.h"
#include "telemetry/registry.h"
#include "net/graph.h"
#include "net/shortest_paths.h"
#include "routing/router.h"
#include "sim/cluster.h"
#include "sim/config.h"
#include "sim/flow_log.h"
#include "sim/policy.h"
#include "sim/stats.h"
#include "sim/traffic.h"
#include "topology/world.h"
#include "workload/generator.h"

namespace rfh {

/// RNG stream fork tags. The engine forks one independent stream per
/// concern from the scenario seed; the differential oracle
/// (src/check/reference.cpp) forks the same tags so its workload stream
/// is bit-identical to the engine's.
inline constexpr std::uint64_t kWorkloadStreamTag = 0x776B6C64;  // "wkld"
inline constexpr std::uint64_t kPolicyStreamTag = 0x706F6C69;    // "poli"
inline constexpr std::uint64_t kFailureStreamTag = 0x6661696C;   // "fail"
/// Arrival-timestamp stream for src/stream/: forked per (epoch, DC) so
/// parallel sweeps and the batch engine never contend for the same
/// stream (see stream/arrival.cpp).
inline constexpr std::uint64_t kStreamStreamTag = 0x7374726D;  // "strm"

/// Relative q_bar move that emits a TrafficShift event: the engine keeps
/// a per-partition baseline and fires when |q_bar - baseline| crosses
/// this fraction of the baseline (then re-baselines), so steady-state
/// drift stays silent and only perturbation echoes enter the trace.
inline constexpr double kTrafficShiftThreshold = 0.25;

/// kNodeCap drops of availability-floor repairs above this count per
/// epoch emit a once-per-epoch warning and are tallied into
/// rfh_repairs_starved_total — the silent repair-starvation signal the
/// default vnode cap used to hide at 10k+ servers.
inline constexpr std::uint32_t kStarvedRepairWarnThreshold = 0;

/// Everything observable about one epoch, for metrics collection.
struct EpochReport {
  Epoch epoch = 0;
  double total_queries = 0.0;
  double unserved_queries = 0.0;
  double mean_path_length = 0.0;
  std::uint32_t replications = 0;
  std::uint32_t migrations = 0;
  std::uint32_t suicides = 0;
  std::uint32_t dropped_actions = 0;
  /// dropped_actions broken down by DropReason (indexed by its value).
  std::array<std::uint32_t, kDropReasonCount> dropped_by_reason{};
  /// Availability-floor repairs dropped on a node cap this epoch — each
  /// one is a partition below its target copy count whose repair the
  /// capacity layer refused (see kStarvedRepairWarnThreshold).
  std::uint32_t repairs_starved = 0;
  double replication_cost = 0.0;
  double migration_cost = 0.0;
  std::uint32_t total_replicas = 0;  // copies across partitions, primaries included
};

class Simulation {
 public:
  Simulation(World world, const SimConfig& config,
             std::unique_ptr<WorkloadGenerator> workload,
             std::unique_ptr<ReplicationPolicy> policy);

  /// Run one epoch; returns its report.
  EpochReport step();

  /// Run `epochs` steps, discarding intermediate reports.
  void run(Epoch epochs);

  // --- failure injection -------------------------------------------------
  void fail_servers(std::span<const ServerId> servers);
  /// Kill `n` uniformly-random live servers; returns which.
  std::vector<ServerId> fail_random_servers(std::uint32_t n);
  /// Kill every live server in a datacenter at once (the paper's
  /// "natural disasters, such as earthquake or tornado, which may destroy
  /// a whole datacenter"). Returns the victims. Partitions whose copies
  /// all lived there (availability level < 5) lose data; geographically
  /// diverse placements survive via promotion.
  std::vector<ServerId> fail_datacenter(DatacenterId dc);
  void recover_servers(std::span<const ServerId> servers);

  /// A primary handover performed by the most recent fail_servers call.
  struct Promotion {
    PartitionId partition;
    ServerId new_primary;
    /// True when no copy survived and the partition was reseeded empty.
    bool reseeded = false;
  };
  /// Promotions from the most recent fail_servers / fail_random_servers
  /// call (cleared on the next one). Consumers such as the consistency
  /// tracker use this to account for writes lost in a failover.
  [[nodiscard]] std::span<const Promotion> last_promotions() const noexcept {
    return last_promotions_;
  }

  // --- network failure injection ---------------------------------------
  /// Take an inter-datacenter link down; routes are recomputed, so the
  /// traffic-hub structure can shift (the paper's "network failure"
  /// class). Refuses to disconnect the graph. Idempotent.
  void fail_link(DatacenterId a, DatacenterId b);
  /// Bring a previously failed link back. Idempotent.
  void restore_link(DatacenterId a, DatacenterId b);
  [[nodiscard]] std::size_t failed_link_count() const noexcept {
    return disabled_links_.size();
  }
  /// True when taking (a, b) down on top of the already-failed links
  /// would disconnect the datacenter graph — fail_link refuses (asserts)
  /// in that case, so schedulers probe here first.
  [[nodiscard]] bool link_failure_would_partition(DatacenterId a,
                                                  DatacenterId b) const;

  // --- intra-epoch parallelism ------------------------------------------
  /// Fan the shardable epoch phases (flow propagation, the stats fold,
  /// the policy's per-partition scan) across `jobs` threads: 0 = one per
  /// hardware thread, 1 (the default) = serial, no pool. Every value of
  /// `jobs` produces byte-identical simulations — shards own disjoint
  /// partition ranges and their outputs are merged in shard-index order
  /// (DESIGN.md §15) — so this is purely a wall-clock knob.
  void set_jobs(unsigned jobs);
  /// Effective worker count (1 when serial).
  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }
  /// The engine's pool; null when serial.
  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_.get(); }

  // --- traffic injection -------------------------------------------------
  /// Scale every query flow by `factor` from the next step() on (chaos
  /// flash-crowd events). The multiplier is applied to the generated
  /// batch, so all downstream statistics see the surged demand; it does
  /// not perturb any RNG stream, keeping seeded runs bit-identical for
  /// factor == 1.
  void set_traffic_multiplier(double factor) noexcept {
    traffic_multiplier_ = factor;
  }
  [[nodiscard]] double traffic_multiplier() const noexcept {
    return traffic_multiplier_;
  }

  /// Freeze or thaw a server's smoothed traffic statistics (the chaos
  /// `stalestats` fault): while frozen the server keeps reporting its
  /// stale tr_bar/arrival numbers into Eqs. 9-11/17. Emits a StatsFrozen
  /// event on every actual transition; idempotent otherwise. Draws no
  /// randomness, so seeded runs stay bit-identical when unused.
  void set_stats_frozen(ServerId s, bool frozen);

  // --- observability ----------------------------------------------------
  /// The simulation's event bus. Attach sinks (obs/sinks.h) before
  /// stepping to capture a structured trace; with no sinks installed the
  /// instrumentation is a no-op (see bench_micro_events).
  [[nodiscard]] EventBus& events() noexcept { return events_; }
  [[nodiscard]] const EventBus& events() const noexcept { return events_; }

  // --- telemetry --------------------------------------------------------
  /// Attach a wall-clock profiler: step() opens one epoch window per call
  /// and times each hot-path phase into it. nullptr (the default)
  /// disables profiling at the cost of one pointer test per phase.
  /// Timing is observational only and never feeds simulation state.
  void set_profiler(PhaseProfiler* profiler) noexcept {
    profiler_ = profiler;
  }
  [[nodiscard]] PhaseProfiler* profiler() const noexcept {
    return profiler_;
  }

  /// Attach a per-flow segment log (sim/flow_log.h): propagate() clears
  /// it each epoch and records every absorption/blocking decision into
  /// it for the stream subsystem. Observational only — attaching a log
  /// never changes simulation state or RNG streams. nullptr detaches.
  void set_flow_log(FlowLog* flow_log) noexcept { flow_log_ = flow_log; }
  [[nodiscard]] FlowLog* flow_log() const noexcept { return flow_log_; }

  /// Attach a metric registry: the engine resolves its counter/gauge
  /// handles once (see DESIGN.md for the metric names) and bumps them at
  /// the end of every step; the router and policy receive the registry
  /// too. nullptr detaches. Counters are updated from the same
  /// EpochReport fields the trace events carry, so registry totals,
  /// CounterSink totals and report sums always reconcile.
  void set_telemetry(MetricRegistry* registry);
  [[nodiscard]] MetricRegistry* telemetry() const noexcept {
    return telemetry_;
  }

  // --- observers -------------------------------------------------------
  [[nodiscard]] const Topology& topology() const noexcept {
    return world_.topology;
  }
  [[nodiscard]] const World& world() const noexcept { return world_; }
  [[nodiscard]] const ShortestPaths& paths() const noexcept { return paths_; }
  [[nodiscard]] const ClusterState& cluster() const noexcept {
    return cluster_;
  }
  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const EpochTraffic& traffic() const noexcept {
    return traffic_;
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] Epoch epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::string_view policy_name() const {
    return policy_->name();
  }

  /// Copies lost with no surviving replica since construction.
  [[nodiscard]] std::uint32_t data_losses() const noexcept {
    return data_losses_;
  }
  /// EC mode: true while the partition's stripe sits below k live
  /// fragments (the loss is already counted in data_losses()). Always
  /// false in replica mode.
  [[nodiscard]] bool stripe_lost(PartitionId p) const noexcept {
    return p.value() < stripe_lost_.size() && stripe_lost_[p.value()] != 0;
  }
  /// Cumulative cost accumulators (paper Figs. 5 and 7 plot cumulative
  /// totals).
  [[nodiscard]] double cumulative_replication_cost() const noexcept {
    return cum_replication_cost_;
  }
  [[nodiscard]] double cumulative_migration_cost() const noexcept {
    return cum_migration_cost_;
  }
  [[nodiscard]] std::uint32_t cumulative_migrations() const noexcept {
    return cum_migrations_;
  }
  [[nodiscard]] std::uint32_t cumulative_replications() const noexcept {
    return cum_replications_;
  }

  /// Eq. 1 transfer cost between two datacenters.
  [[nodiscard]] double transfer_cost(DatacenterId from, DatacenterId to,
                                     Bytes bytes,
                                     BytesPerEpoch bandwidth) const;

 private:
  /// One contiguous run of same-partition flows in the epoch's batch —
  /// the unit the sharded propagate distributes, so a partition's flows
  /// are always processed by exactly one shard, in batch order.
  struct FlowRun {
    std::uint32_t partition = 0;
    std::uint32_t begin = 0;  ///< flow index into the batch
    std::uint32_t end = 0;    ///< exclusive
  };
  /// Deferred add_path_sample + add_latency pair. These feed global
  /// accumulators (routed_queries_, the latency histogram) whose FP
  /// association order must match the serial engine, so shards log the
  /// operands and the merge replays them in shard-index order.
  struct PathDelta {
    double queries = 0.0;
    double hops = 0.0;
    double ms = 0.0;
  };
  /// Deferred server_work_mut add — the server axis is shared across
  /// shards (relays of different partitions can be the same server), so
  /// these are replayed too.
  struct WorkDelta {
    std::uint32_t server = 0;
    double amount = 0.0;
  };
  /// Per-shard propagate scratch; persists across epochs so steady-state
  /// epochs reuse its capacity.
  struct PropagateShard {
    std::vector<PathDelta> samples;
    std::vector<WorkDelta> work;
    std::vector<FlowSegment> segments;  ///< only filled when a log is attached
    Router::RouteCtx route_ctx;
    /// hosts_in_dc results for the partition currently being processed,
    /// one entry per datacenter touched (placement is frozen during
    /// propagate, so caching is exact).
    struct HostsEntry {
      std::uint32_t dc = 0;
      std::vector<ServerId> hosts;
    };
    std::vector<HostsEntry> host_cache;
    std::size_t host_cache_used = 0;
    std::uint32_t cached_partition = 0;
    bool cache_valid = false;

    void begin_epoch();
    /// Cached hosts_in_dc(p, dc); the span is valid until the next call.
    std::span<const ServerId> hosts(const ClusterState& cluster, PartitionId p,
                                    DatacenterId dc);
  };

  void seed_primaries();
  void propagate(const QueryBatch& batch);
  /// Route and absorb one flow. Partition-indexed traffic state is
  /// written directly (the caller guarantees this shard owns the flow's
  /// partition); writes to global accumulators are deferred into `shard`
  /// for the shard-order replay.
  void propagate_flow(const QueryFlow& flow,
                      std::span<const std::vector<ServerId>> live_by_dc,
                      PropagateShard& shard);
  void apply_actions(const Actions& actions, EpochReport& report);
  /// `causes` is aligned with `lost`: the ServerFailed cause id of each
  /// lost copy, so promotions/reseeds chain to the failure that forced
  /// them (empty when no sink is listening).
  void handle_lost_copies(std::span<const ClusterState::LostCopy> lost,
                          std::span<const std::uint64_t> causes);
  /// Emit TrafficShift events for partitions whose q_bar moved past
  /// kTrafficShiftThreshold since the last baseline. Only called when a
  /// sink is installed.
  void emit_traffic_shifts();
  /// Bump the resolved registry handles from this epoch's report.
  void update_telemetry(const EpochReport& report);
  /// Rebuild graph / shortest paths / router from the live link set.
  void rebuild_network();
  [[nodiscard]] std::vector<Link> active_links() const;

  /// Registry handles resolved once by set_telemetry so the per-epoch
  /// update is plain pointer bumps (no name lookups in the hot path).
  struct TelemetryHandles {
    Counter* queries = nullptr;
    Counter* unserved = nullptr;
    std::array<Counter*, 3> applied{};  // indexed by ActionKind
    std::array<Counter*, kDropReasonCount> dropped{};
    Counter* replication_cost = nullptr;
    Counter* migration_cost = nullptr;
    Counter* epochs = nullptr;
    Counter* data_losses = nullptr;
    Counter* repairs_starved = nullptr;
    Gauge* replicas = nullptr;
    Gauge* live_servers = nullptr;
    Gauge* epoch = nullptr;
  };

  World world_;
  SimConfig config_;
  EventBus events_;
  PhaseProfiler* profiler_ = nullptr;
  MetricRegistry* telemetry_ = nullptr;
  FlowLog* flow_log_ = nullptr;
  TelemetryHandles tel_;
  DcGraph graph_;
  ShortestPaths paths_;
  Router router_;
  ClusterState cluster_;
  TrafficStats stats_;
  EpochTraffic traffic_;
  std::unique_ptr<WorkloadGenerator> workload_;
  std::unique_ptr<ReplicationPolicy> policy_;
  Rng rng_workload_;
  Rng rng_policy_;
  Rng rng_failures_;
  Epoch epoch_ = 0;
  double traffic_multiplier_ = 1.0;
  /// Causal bookkeeping (tracing only; never feeds simulation state).
  /// Per partition: the cause id of the latest state-changing event that
  /// touched it (lost copy, promotion, applied action, traffic shift) —
  /// the parent for the next RuleFired concerning it. 0 = no history.
  std::vector<std::uint64_t> partition_cause_;
  /// Per partition: the q_bar baseline TrafficShift detection compares
  /// against (negative = not yet initialized).
  std::vector<double> shift_baseline_;
  std::uint32_t data_losses_ = 0;
  /// EC mode: 1 when the stripe currently has fewer than k live fragments
  /// (reconstruction-infeasible; counted as a data loss until repairs
  /// bring it back above k, which emits StripeReconstructed). Unused in
  /// replica mode.
  std::vector<std::uint8_t> stripe_lost_;
  std::vector<Promotion> last_promotions_;
  /// Disabled links as normalized (min id, max id) datacenter pairs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> disabled_links_;
  double cum_replication_cost_ = 0.0;
  double cum_migration_cost_ = 0.0;
  std::uint32_t cum_migrations_ = 0;
  std::uint32_t cum_replications_ = 0;
  // Per-epoch outbound bandwidth budgets (reset each step).
  std::vector<Bytes> replication_bytes_;
  std::vector<Bytes> migration_bytes_;
  // --- intra-epoch parallelism (DESIGN.md §15) --------------------------
  unsigned jobs_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<PropagateShard> shards_;
  /// Epoch-scoped flat scratch (the run table); reset at the top of every
  /// propagate, zero steady-state allocations.
  ScratchArena epoch_arena_;
};

}  // namespace rfh
