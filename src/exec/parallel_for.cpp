#include "exec/parallel_for.h"

namespace rfh {

unsigned shard_count_for(const ThreadPool* pool, std::size_t n,
                         std::size_t min_grain) noexcept {
  const unsigned workers = pool == nullptr ? 0 : pool->size();
  if (workers <= 1 || n == 0) return 1;
  if (min_grain == 0) min_grain = 1;
  const std::size_t grain_cap = (n + min_grain - 1) / min_grain;
  return static_cast<unsigned>(
      std::min<std::size_t>({workers, grain_cap, n}));
}

}  // namespace rfh
