#include "ring/ring.h"

#include <algorithm>

#include "common/assert.h"
#include "ring/hash.h"

namespace rfh {

HashRing::HashRing(std::uint32_t tokens_per_server)
    : tokens_per_server_(tokens_per_server) {
  RFH_ASSERT(tokens_per_server_ > 0);
}

void HashRing::add_server(ServerId server) {
  RFH_ASSERT(server.valid());
  RFH_ASSERT_MSG(!contains(server), "server already on ring");
  std::vector<std::uint64_t>& tokens = server_tokens_[server];
  tokens.reserve(tokens_per_server_);
  for (std::uint32_t i = 0; i < tokens_per_server_; ++i) {
    std::uint64_t pos = hash_combine(hash64(std::uint64_t{server.value()}),
                                     hash64(std::uint64_t{i}));
    // Token collisions across servers are astronomically unlikely but
    // would silently drop a token; probe linearly to keep the invariant
    // "every server owns exactly tokens_per_server_ positions".
    while (ring_.contains(pos)) ++pos;
    ring_.emplace(pos, server);
    tokens.push_back(pos);
  }
}

void HashRing::remove_server(ServerId server) {
  const auto it = server_tokens_.find(server);
  RFH_ASSERT_MSG(it != server_tokens_.end(), "server not on ring");
  for (const std::uint64_t pos : it->second) {
    ring_.erase(pos);
  }
  server_tokens_.erase(it);
}

bool HashRing::contains(ServerId server) const {
  return server_tokens_.contains(server);
}

ServerId HashRing::primary(std::uint64_t key) const {
  RFH_ASSERT_MSG(!ring_.empty(), "ring is empty");
  auto it = ring_.lower_bound(key);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<ServerId> HashRing::preference_list(std::uint64_t key,
                                                std::size_t n) const {
  RFH_ASSERT_MSG(!ring_.empty(), "ring is empty");
  std::vector<ServerId> result;
  result.reserve(std::min(n, server_tokens_.size()));
  auto it = ring_.lower_bound(key);
  for (std::size_t steps = 0;
       result.size() < n && steps < ring_.size(); ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    const ServerId candidate = it->second;
    if (std::find(result.begin(), result.end(), candidate) == result.end()) {
      result.push_back(candidate);
    }
    ++it;
  }
  return result;
}

std::uint64_t HashRing::partition_key(PartitionId partition) {
  return hash_combine(0x7061727469746E00ULL /* "partitn" */,
                      hash64(std::uint64_t{partition.value()}));
}

ServerId HashRing::partition_owner(PartitionId partition) const {
  return primary(partition_key(partition));
}

}  // namespace rfh
