// Query routing: requester datacenter -> holder server.
//
// A query for partition B_i issued near datacenter j travels the fixed
// shortest path of datacenters towards the primary holder. Inside each
// datacenter the query is handled by a deterministic *relay* server
// (rendezvous-hashed per (partition, datacenter)); any replica hosted in a
// transit datacenter can absorb the query there. Hop counting follows the
// paper's lookup-path-length metric: one hop to enter the requester
// datacenter's relay, one hop per further datacenter, and one final hop
// from the holder datacenter's relay down to the owning server.
//
// Route memo: a route is a pure function of (partition, requester,
// holder, the per-DC live sets, the shortest paths). The engine's
// placement mutates at epoch granularity, so the Router memoizes computed
// routes in per-partition slot rows — memo_rows_[partition][requester] —
// validated by stamps: a global stamp (bumped by invalidate_routes) and a
// per-partition stamp (bumped by invalidate_routes_for), so both
// invalidation flavours are O(1) and never touch other partitions' rows.
// Because a slot is only ever read and written by code handling its own
// partition, the sharded propagate pass (each shard owns a contiguous
// partition range) uses the memo concurrently with no synchronisation —
// see DESIGN.md §11/§15 for the contract. Each entry records the holder
// it was computed for; a lookup with a different holder recomputes, so
// stale-primary hazards cannot serve a wrong route even if an
// invalidation hook is missed.
//
// Counters: the serial route() maintains the memo hit/miss totals and
// telemetry counters directly. The RouteCtx overload accumulates them
// per shard instead; the engine flushes contexts in shard-index order
// after the join, which reproduces the serial totals exactly (integer
// counts in doubles are order-invariant below 2^53).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "net/shortest_paths.h"
#include "topology/topology.h"

namespace rfh {

class Counter;
class MetricRegistry;

/// One datacenter visited by a query, in order.
struct RouteStage {
  DatacenterId dc;
  /// The forwarding server inside `dc` that carries this partition's
  /// pass-through traffic (a traffic-hub candidate).
  ServerId relay;
  /// Network hops from the client when the query reaches this stage.
  std::uint32_t hops_at_entry = 0;
  /// One-way network latency from the client to this stage: per-hop
  /// switching cost plus fibre propagation over the kilometres travelled.
  double latency_ms = 0.0;
};

struct Route {
  std::vector<RouteStage> stages;  // requester DC first, holder DC last
  ServerId holder;
  /// Hops if the query must go all the way to the holder server.
  std::uint32_t total_hops = 0;
  /// Latency if the query must go all the way to the holder server.
  double total_latency_ms = 0.0;
};

/// Latency model constants (see DESIGN.md): 2 ms switching cost per hop,
/// ~200 km of fibre per millisecond of propagation.
inline constexpr double kHopLatencyMs = 2.0;
inline constexpr double kFibreKmPerMs = 200.0;

class Router {
 public:
  Router(const Topology& topology, const ShortestPaths& paths);

  /// Per-shard routing context: local hit/miss/telemetry tallies plus the
  /// result slot used when the memo is off. References returned by the
  /// ctx overload stay valid until the next route() call with the same
  /// ctx (or an invalidation). Flush contexts in shard-index order via
  /// flush_counts().
  struct RouteCtx;

  /// Compute the route for queries from `requester` to the primary copy on
  /// `holder`. `live_by_dc[dc]` lists the currently-alive servers of each
  /// datacenter (relays are only chosen among live servers; a datacenter
  /// with no live servers is skipped as a stage).
  ///
  /// The returned reference stays valid until the next route() /
  /// invalidate call on this Router. Callers needing to keep a route
  /// across epochs must copy it.
  [[nodiscard]] const Route& route(
      PartitionId partition, DatacenterId requester, ServerId holder,
      std::span<const std::vector<ServerId>> live_by_dc) const;

  /// Concurrent variant: identical routing, but all counter traffic lands
  /// in `ctx`. Callers running shards concurrently must (a) pre-size the
  /// memo with reserve_memo() and (b) never route the same partition from
  /// two shards.
  [[nodiscard]] const Route& route(
      PartitionId partition, DatacenterId requester, ServerId holder,
      std::span<const std::vector<ServerId>> live_by_dc, RouteCtx& ctx) const;

  /// Fold a context's tallies into the router totals and telemetry
  /// counters, then zero them. Call once per shard, in shard-index order.
  void flush_counts(RouteCtx& ctx) const;

  /// Pre-size the memo for `partitions` rows so concurrent shards never
  /// grow the outer table. Idempotent; rows themselves are allocated on
  /// first touch by the owning shard.
  void reserve_memo(std::size_t partitions) const;

  /// Relay server for (partition, dc) among the given live servers.
  [[nodiscard]] static ServerId relay_for(
      PartitionId partition, DatacenterId dc,
      std::span<const ServerId> live_servers);

  // --- route memo -------------------------------------------------------
  /// Memoization toggle (default on). Disabling also drops all entries;
  /// with the memo off every route() recomputes, which tests use as the
  /// differential baseline.
  void set_memo_enabled(bool enabled);
  [[nodiscard]] bool memo_enabled() const noexcept { return memo_enabled_; }
  /// Drop every memoized route (liveness, link or path-table change).
  void invalidate_routes();
  /// Drop the memoized routes of one partition (placement mutation).
  void invalidate_routes_for(PartitionId partition);
  [[nodiscard]] std::uint64_t memo_hits() const noexcept { return memo_hits_; }
  [[nodiscard]] std::uint64_t memo_misses() const noexcept {
    return memo_misses_;
  }

  /// Export route/stage/dead-skip/memo counters into `registry`
  /// (rfh_router_*). nullptr detaches. Counting is observational only;
  /// route() stays deterministic either way.
  void set_telemetry(MetricRegistry* registry);

 private:
  struct MemoEntry {
    /// Validity stamps: an entry is live only while both match the
    /// router's current stamps (global and per-partition).
    std::uint64_t stamp = 0;
    std::uint64_t partition_stamp = 0;
    ServerId holder;  // the primary the route was computed for
    /// Dead datacenters skipped while computing (replayed into telemetry
    /// on hits so counter totals are memo-invariant).
    std::uint32_t dead_skips = 0;
    Route route;
  };

 public:
  struct RouteCtx {
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    std::uint64_t routes = 0;
    std::uint64_t stages = 0;
    std::uint64_t dead_skips = 0;
    /// Result slot for memo-off routing (per-context so shards never
    /// share it).
    MemoEntry scratch;
  };

 private:
  /// Compute a route from scratch into `entry`.
  void compute(PartitionId partition, DatacenterId requester, ServerId holder,
               std::span<const std::vector<ServerId>> live_by_dc,
               MemoEntry& entry) const;

  [[nodiscard]] MemoEntry& memo_slot(PartitionId partition,
                                     DatacenterId requester) const;

  const Topology* topology_;
  const ShortestPaths* paths_;
  bool memo_enabled_ = true;
  /// memo_rows_[partition][requester-DC]; rows sized lazily on first
  /// touch. Entries validated by stamp pairs instead of being erased.
  mutable std::vector<std::vector<MemoEntry>> memo_rows_;
  mutable std::vector<std::uint64_t> partition_stamps_;
  mutable std::uint64_t stamp_ = 1;
  /// Context backing the serial route() overload.
  mutable RouteCtx serial_ctx_;
  mutable std::uint64_t memo_hits_ = 0;
  mutable std::uint64_t memo_misses_ = 0;
  // Registry-owned counters (not ours); null when telemetry is detached.
  Counter* routes_ = nullptr;
  Counter* stages_ = nullptr;
  Counter* dead_skips_ = nullptr;
  Counter* memo_hit_counter_ = nullptr;
  Counter* memo_miss_counter_ = nullptr;
};

}  // namespace rfh
