// The paper's evaluation world (Fig. 1 / Section III-A).
//
// Ten datacenters in different countries on three continents: three in the
// USA (A..C), two in Canada (D, E), two in Switzerland (F, G), one in
// China (H) and two in Japan (I, J). Each datacenter initially has one
// room with two racks of five servers, i.e. 100 physical nodes total.
//
// The inter-datacenter link set is chosen so that the traffic-hub
// structure of the paper's running example emerges: queries from the
// Asian datacenters (H, I, J) towards the US partition holder A funnel
// through a small number of gateway datacenters (D/B for the
// trans-Pacific flows, F/C for the Eurasian flow). The exact hub
// identities depend on the link set — see DESIGN.md §2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "topology/topology.h"

namespace rfh {

/// An undirected inter-datacenter link with a kilometre weight (used both
/// as the Dijkstra edge weight and as Eq. 1's distance d).
struct Link {
  DatacenterId a;
  DatacenterId b;
  double km = 0.0;
};

struct WorldOptions {
  std::uint32_t rooms_per_datacenter = 1;
  std::uint32_t racks_per_room = 2;
  std::uint32_t servers_per_rack = 5;

  // Heterogeneous capacity ranges ("for every server, their capacities are
  // different from each other"). Drawn uniformly per server.
  Bytes storage_capacity_lo = gib(8);
  Bytes storage_capacity_hi = gib(10);
  double per_replica_capacity_lo = 2.5;
  double per_replica_capacity_hi = 5.0;
  std::uint32_t service_channels_lo = 4;
  std::uint32_t service_channels_hi = 8;
  BytesPerEpoch replication_bandwidth = mib(300);
  BytesPerEpoch migration_bandwidth = mib(100);
  std::uint32_t max_vnodes = 16;
  /// Partition count the world will carry (0 = unknown). The effective
  /// per-server vnode cap is max(max_vnodes, partitions_hint): one server
  /// can never legally hold two copies of the same partition, so a cap at
  /// the partition count is exactly never-binding. Without the hint the
  /// fixed default cap silently starves availability-floor repairs once
  /// the partition-to-server density outgrows it (dense worlds, shrunken
  /// clusters) — set it whenever the partition count is known.
  std::uint32_t partitions_hint = 0;

  std::uint64_t seed = 42;
};

struct World {
  Topology topology;
  std::vector<Link> links;
  /// Datacenter ids in paper order: index 0 == "A", ..., 9 == "J".
  std::vector<DatacenterId> dc;

  /// Convenience: datacenter id for a paper letter ('A'..'J').
  [[nodiscard]] DatacenterId by_letter(char letter) const;
};

/// Build the default 10-datacenter, 100-server world.
World build_paper_world(const WorldOptions& options = {});

/// Build a smaller or larger synthetic world with `n_datacenters` placed
/// round-robin across the paper's continents and connected in a ring plus
/// deterministic chords (used by scaling tests and property sweeps).
///
/// `chord_strides` controls the chord set. Empty (the default) keeps the
/// legacy rule — a stride-3 chord at every third datacenter, diameter
/// O(n/3). For large-N scaling benches pass log-spaced strides (e.g.
/// {8, 64, 512}): every datacenter at a multiple of stride s links to the
/// one s positions ahead, giving the O(log n) diameter of a real
/// multi-tier backbone instead of a thin ring.
World build_synthetic_world(std::uint32_t n_datacenters,
                            const WorldOptions& options = {},
                            std::span<const std::uint32_t> chord_strides = {});

}  // namespace rfh
