// Extension experiment — elasticity under a diurnal load cycle.
//
// The paper's core pitch is resilience to demand *swings* ("always
// maintain maximum number of replicas in case of explosive query load
// outburst or save resources with fewer replicas at the expense of
// performance"). The flash-crowd experiment moves demand in space; this
// one moves it in time: lambda(t) swings sinusoidally +/-60% around the
// Table I mean with a 100-epoch period.
//
// Expected structure: RFH's suicide path lets its replica census breathe
// with the load (high correlation between census and offered load);
// grow-only schemes stay provisioned for the peak (flat census, near-zero
// correlation) and waste the trough capacity.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <iterator>

#include "bench_args.h"
#include "exec/thread_pool.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "workload/generator.h"

namespace {

// Pearson correlation between the offered load and the replica census.
double census_load_correlation(const rfh::PolicyRun& run,
                               const rfh::DiurnalWorkload& reference,
                               std::size_t skip) {
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  double n = 0.0;
  for (std::size_t e = skip; e < run.series.size(); ++e) {
    const double x = reference.mean_at(static_cast<rfh::Epoch>(e));
    const double y = run.series[e].total_replicas;
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
    n += 1.0;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  // run_comparison builds workloads from the scenario; a diurnal scenario
  // is not one of the Table I settings, so drive run_policy directly with
  // custom simulations.
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  scenario.epochs = 400;

  rfh::WorkloadParams params;
  params.partitions = scenario.sim.partitions;
  params.datacenters = 10;
  params.zipf_exponent = scenario.zipf_exponent;
  const rfh::Epoch period = 100;
  const double amplitude = 0.6;
  const rfh::DiurnalWorkload reference(params, period, amplitude);

  std::cout << "# Diurnal elasticity: lambda(t) = 300*(1 + 0.6*sin(2pi*t/"
            << period << ")), " << scenario.epochs << " epochs\n";

  // The four policy runs are independent (each builds its own world,
  // workload and simulation), so fan them out on the pool and merge in
  // policy order — output is bit-identical for every --jobs value.
  const rfh::PolicyKind kinds[] = {
      rfh::PolicyKind::kRequest, rfh::PolicyKind::kOwner,
      rfh::PolicyKind::kRandom, rfh::PolicyKind::kRfh};
  auto run_kind = [&](rfh::PolicyKind kind) {
    rfh::World world = rfh::build_paper_world(scenario.world);
    auto workload =
        std::make_unique<rfh::DiurnalWorkload>(params, period, amplitude);
    rfh::Simulation sim(std::move(world), scenario.sim, std::move(workload),
                        rfh::make_policy(kind));
    rfh::MetricsCollector collector;
    rfh::PolicyRun run;
    run.kind = kind;
    for (rfh::Epoch e = 0; e < scenario.epochs; ++e) {
      run.series.push_back(collector.collect(sim, sim.step()));
    }
    return run;
  };
  rfh::ThreadPool pool(jobs == 1 ? 0
                                 : std::min<unsigned>(
                                       jobs == 0 ? rfh::ThreadPool::default_jobs()
                                                 : jobs,
                                       static_cast<unsigned>(std::size(kinds))));
  std::vector<std::future<rfh::PolicyRun>> futures;
  for (const rfh::PolicyKind kind : kinds) {
    futures.push_back(pool.submit([&run_kind, kind] { return run_kind(kind); }));
  }

  std::vector<rfh::NamedSeries> series;
  std::printf("# census-load correlation (epochs 100+):");
  for (std::future<rfh::PolicyRun>& future : futures) {
    const rfh::PolicyRun run = pool.wait(future);
    std::printf(" %s=%.3f", std::string(rfh::policy_name(run.kind)).c_str(),
                census_load_correlation(run, reference, 100));
    series.push_back(rfh::NamedSeries{
        std::string(rfh::policy_name(run.kind)),
        rfh::extract_u32(run.series, &rfh::EpochMetrics::total_replicas)});
  }
  std::printf("\n");
  rfh::write_csv(std::cout, series);
  return 0;
}
