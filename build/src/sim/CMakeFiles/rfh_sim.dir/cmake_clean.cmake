file(REMOVE_RECURSE
  "CMakeFiles/rfh_sim.dir/cluster.cpp.o"
  "CMakeFiles/rfh_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/rfh_sim.dir/engine.cpp.o"
  "CMakeFiles/rfh_sim.dir/engine.cpp.o.d"
  "CMakeFiles/rfh_sim.dir/stats.cpp.o"
  "CMakeFiles/rfh_sim.dir/stats.cpp.o.d"
  "librfh_sim.a"
  "librfh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
