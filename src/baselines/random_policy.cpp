#include "baselines/random_policy.h"

#include "common/availability.h"
#include "ring/ring.h"

namespace rfh {

Actions RandomPolicy::decide(const PolicyContext& ctx) {
  Actions actions;
  const std::uint32_t rmin =
      min_replicas(ctx.config.min_availability, ctx.config.failure_rate);

  for (std::uint32_t pv = 0; pv < ctx.config.partitions; ++pv) {
    const PartitionId p{pv};
    const ServerId primary = ctx.cluster.primary_of(p);
    if (!primary.valid()) continue;

    const std::uint32_t r = ctx.cluster.replica_count(p);
    const bool overloaded = holder_overloaded(ctx, p, primary);

    if (r >= rmin &&
        (!overloaded || r >= ctx.config.max_replicas_per_partition)) {
      continue;
    }
    // Next free clockwise successor ("replicate data at the N-1 clockwise
    // successor nodes"). The preference list already skips duplicates, so
    // walking a little past the current count finds the first server not
    // yet hosting the partition.
    const auto preference = ctx.cluster.ring().preference_list(
        HashRing::partition_key(p), r + 4);
    for (const ServerId candidate : preference) {
      if (ctx.cluster.can_accept(candidate, p)) {
        actions.replications.push_back(ReplicateAction{p, candidate, {}});
        break;
      }
    }
  }
  return actions;
}

}  // namespace rfh
