# Empty compiler generated dependencies file for rfh_net.
# This may be replaced when dependencies are built.
