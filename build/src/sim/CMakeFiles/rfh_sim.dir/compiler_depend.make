# Empty compiler generated dependencies file for rfh_sim.
# This may be replaced when dependencies are built.
