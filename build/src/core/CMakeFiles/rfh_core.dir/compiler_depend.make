# Empty compiler generated dependencies file for rfh_core.
# This may be replaced when dependencies are built.
