// End-to-end observability: a real Simulation with sinks attached emits a
// trace in which every RFH action carries its decision explanation, every
// drop carries a reason, failure injection shows up as failure events, and
// the per-reason drop counters in EpochReport reconcile with the trace.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.h"
#include "harness/scenario.h"
#include "obs/sinks.h"

namespace rfh {
namespace {

Scenario small_scenario() {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  return scenario;
}

TEST(ObsIntegration, RfhActionsCarryDecisionExplanations) {
  const Scenario scenario = small_scenario();
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  RingBufferSink ring(1 << 16);
  sim->events().add_sink(&ring);
  for (Epoch e = 0; e < scenario.epochs; ++e) sim->step();

  std::size_t replica_added = 0;
  for (const Event& event : ring.snapshot()) {
    if (const auto* added = std::get_if<ReplicaAdded>(&event)) {
      ++replica_added;
      // Every RFH replication must name the inequality that fired and the
      // numbers behind it.
      EXPECT_NE(added->why.rule, DecisionRule::kNone);
      EXPECT_STRNE(rule_inequality(added->why.rule), "");
      EXPECT_EQ(added->why.beta, sim->config().beta);
      EXPECT_EQ(added->why.gamma, sim->config().gamma);
      EXPECT_GE(added->why.r_min, 1u);
      if (added->why.rule == DecisionRule::kAvailabilityFloor) {
        EXPECT_LT(added->why.observed, added->why.threshold);
      }
      EXPECT_TRUE(added->target.valid());
      EXPECT_TRUE(added->source.valid());
    }
    if (const auto* suicide = std::get_if<Suicide>(&event)) {
      EXPECT_EQ(suicide->why.rule, DecisionRule::kSuicideCold);
      EXPECT_LE(suicide->why.observed, suicide->why.threshold);
    }
    if (const auto* migrated = std::get_if<MigrationExecuted>(&event)) {
      EXPECT_EQ(migrated->why.rule, DecisionRule::kMigrationBenefit);
      EXPECT_GE(migrated->why.observed, migrated->why.threshold);
    }
  }
  // The cluster must have grown replicas (availability floor alone
  // guarantees this), so the trace cannot be empty.
  EXPECT_GT(replica_added, 0u);
}

TEST(ObsIntegration, EpochStreamIsCompleteAndOrdered) {
  const Scenario scenario = small_scenario();
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  CounterSink counters;
  RingBufferSink ring(1 << 16);
  sim->events().add_sink(&counters);
  sim->events().add_sink(&ring);
  for (Epoch e = 0; e < scenario.epochs; ++e) sim->step();

  EXPECT_EQ(counters.count<EpochCompleted>(), scenario.epochs);
  EXPECT_EQ(counters.count<QueryRoutedSummary>(), scenario.epochs);
  Epoch last = 0;
  for (const Event& event : ring.snapshot()) {
    EXPECT_GE(event_epoch(event), last);
    last = event_epoch(event);
  }
}

TEST(ObsIntegration, FailureInjectionEmitsFailureEvents) {
  const Scenario scenario = small_scenario();
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  CounterSink counters;
  sim->events().add_sink(&counters);
  for (Epoch e = 0; e < 30; ++e) sim->step();

  const auto victims = sim->fail_random_servers(25);
  EXPECT_EQ(counters.count<ServerFailed>(), victims.size());
  // With 25 of 100 servers gone some partition must have lost its primary
  // and been promoted (or reseeded).
  EXPECT_EQ(counters.count<PrimaryPromoted>() + counters.count<Reseeded>(),
            sim->last_promotions().size());

  sim->recover_servers(victims);
  EXPECT_EQ(counters.count<ServerRecovered>(), victims.size());
  sim->recover_servers(victims);  // already alive: no duplicate events
  EXPECT_EQ(counters.count<ServerRecovered>(), victims.size());
}

TEST(ObsIntegration, LinkEventsFireOnActualTransitionsOnly) {
  const Scenario scenario = small_scenario();
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  CounterSink counters;
  sim->events().add_sink(&counters);

  sim->fail_link(DatacenterId{0}, DatacenterId{1});
  sim->fail_link(DatacenterId{0}, DatacenterId{1});  // idempotent
  EXPECT_EQ(counters.count<LinkFailed>(), 1u);
  sim->restore_link(DatacenterId{0}, DatacenterId{1});
  sim->restore_link(DatacenterId{0}, DatacenterId{1});
  EXPECT_EQ(counters.count<LinkRestored>(), 1u);
}

TEST(ObsIntegration, DropReasonCountersReconcileWithTheTrace) {
  // A starved replication budget makes the engine refuse actions,
  // exercising the drop path deterministically.
  Scenario scenario = small_scenario();
  scenario.world.replication_bandwidth = 1;
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  CounterSink counters;
  sim->events().add_sink(&counters);

  std::uint64_t reported_drops = 0;
  std::uint64_t reported_by_reason = 0;
  for (Epoch e = 0; e < scenario.epochs; ++e) {
    const EpochReport report = sim->step();
    reported_drops += report.dropped_actions;
    for (const std::uint32_t count : report.dropped_by_reason) {
      reported_by_reason += count;
    }
  }
  EXPECT_EQ(reported_drops, reported_by_reason);
  EXPECT_EQ(counters.count<ActionDropped>(), reported_drops);
  std::uint64_t trace_by_reason = 0;
  for (std::size_t r = 0; r < kDropReasonCount; ++r) {
    trace_by_reason += counters.dropped(static_cast<DropReason>(r));
  }
  EXPECT_EQ(trace_by_reason, reported_drops);
}

TEST(ObsIntegration, RunPolicyAttachesAndFlushesTheSink) {
  Scenario scenario = small_scenario();
  scenario.epochs = 20;
  std::ostringstream out;
  ChromeTraceSink sink(out);
  std::vector<FailureEvent> failures;
  FailureEvent event;
  event.epoch = 10;
  event.kill_random = 5;
  failures.push_back(event);
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh, failures,
                                   RfhPolicy::Options{}, &sink);
  EXPECT_EQ(run.series.size(), 20u);
  const std::string trace = out.str();
  // Flushed: the array is closed.
  EXPECT_EQ(trace.find_last_of(']'), trace.size() - 2);
  EXPECT_NE(trace.find("ServerFailed"), std::string::npos);
  EXPECT_NE(trace.find("EpochCompleted"), std::string::npos);
}

TEST(ObsIntegration, MetricsCarryPerReasonDropCounters) {
  Scenario scenario = small_scenario();
  scenario.world.replication_bandwidth = 1;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh);
  std::uint64_t total = 0;
  std::uint64_t by_reason = 0;
  for (const EpochMetrics& m : run.series) {
    total += m.dropped_this_epoch;
    by_reason += std::uint64_t{m.dropped_bandwidth} + m.dropped_storage_cap +
                 m.dropped_node_cap + m.dropped_dead_target +
                 m.dropped_invalid;
  }
  EXPECT_EQ(total, by_reason);
  EXPECT_GT(total, 0u);  // the cap must actually bite in this scenario
}

TEST(ObsIntegration, TracingDoesNotPerturbTheSimulation) {
  // Determinism guard: the same scenario with and without sinks produces
  // identical epoch series (observability is read-only).
  const Scenario scenario = small_scenario();
  auto traced = make_simulation(scenario, PolicyKind::kRfh);
  RingBufferSink ring(1024);
  CounterSink counters;
  traced->events().add_sink(&ring);
  traced->events().add_sink(&counters);
  auto plain = make_simulation(scenario, PolicyKind::kRfh);
  for (Epoch e = 0; e < 40; ++e) {
    const EpochReport a = traced->step();
    const EpochReport b = plain->step();
    ASSERT_DOUBLE_EQ(a.total_queries, b.total_queries);
    ASSERT_EQ(a.replications, b.replications);
    ASSERT_EQ(a.migrations, b.migrations);
    ASSERT_EQ(a.suicides, b.suicides);
    ASSERT_EQ(a.dropped_actions, b.dropped_actions);
    ASSERT_EQ(a.total_replicas, b.total_replicas);
  }
}

TEST(ObsIntegration, ProfilingAndTelemetryDoNotPerturbTheSimulation) {
  // Same guard for the telemetry layer: --profile / --metrics-out must
  // leave every simulation output bit-identical. Wall-clock timing feeds
  // the profiler and the registry, never the simulation.
  Scenario scenario = small_scenario();
  scenario.world.replication_bandwidth = 1;  // exercise the drop path too
  std::vector<FailureEvent> failures;
  FailureEvent event;
  event.epoch = 25;
  event.kill_random = 10;
  failures.push_back(event);

  const PolicyRun plain =
      run_policy(scenario, PolicyKind::kRfh, failures);
  MetricRegistry registry;
  PhaseProfiler profiler;
  std::ostringstream trace;
  ChromeTraceSink sink(trace);
  const PolicyRun instrumented =
      run_policy(scenario, PolicyKind::kRfh, failures, RfhPolicy::Options{},
                 &sink, &registry, &profiler);

  ASSERT_EQ(plain.series.size(), instrumented.series.size());
  ASSERT_EQ(plain.killed, instrumented.killed);
  for (std::size_t e = 0; e < plain.series.size(); ++e) {
    const EpochMetrics& a = plain.series[e];
    const EpochMetrics& b = instrumented.series[e];
    ASSERT_DOUBLE_EQ(a.utilization, b.utilization);
    ASSERT_DOUBLE_EQ(a.unserved_fraction, b.unserved_fraction);
    ASSERT_DOUBLE_EQ(a.path_length, b.path_length);
    ASSERT_DOUBLE_EQ(a.load_imbalance, b.load_imbalance);
    ASSERT_DOUBLE_EQ(a.latency_mean_ms, b.latency_mean_ms);
    ASSERT_DOUBLE_EQ(a.replication_cost_total, b.replication_cost_total);
    ASSERT_DOUBLE_EQ(a.migration_cost_total, b.migration_cost_total);
    ASSERT_EQ(a.total_replicas, b.total_replicas);
    ASSERT_EQ(a.migrations_total, b.migrations_total);
    ASSERT_EQ(a.dropped_this_epoch, b.dropped_this_epoch);
  }
  // The instrumented run actually instrumented: phases were timed and the
  // trace carries nested PhaseSpan slices.
  EXPECT_EQ(profiler.epochs(), scenario.epochs);
  EXPECT_NE(trace.str().find("workload_gen"), std::string::npos);
}

}  // namespace
}  // namespace rfh
