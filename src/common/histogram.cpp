#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/assert.h"

namespace rfh {

namespace {
// log(kMaxValue / kMinValue)
const double kLogSpan = std::log(Histogram::kMaxValue / Histogram::kMinValue);
}  // namespace

std::size_t Histogram::bucket_of(double value) noexcept {
  const double clamped = std::clamp(value, kMinValue, kMaxValue);
  const double t = std::log(clamped / kMinValue) / kLogSpan;
  const auto i = static_cast<std::size_t>(t * static_cast<double>(kBuckets));
  return std::min(i, kBuckets - 1);
}

double Histogram::bucket_lo(std::size_t i) noexcept {
  return kMinValue * std::exp(kLogSpan * static_cast<double>(i) /
                              static_cast<double>(kBuckets));
}

double Histogram::bucket_hi(std::size_t i) noexcept {
  return bucket_lo(i + 1);
}

void Histogram::add(double weight, double value) noexcept {
  RFH_ASSERT(weight >= 0.0);
  if (weight == 0.0) return;
  weights_[bucket_of(value)] += weight;
  total_weight_ += weight;
  weighted_sum_ += weight * value;
  max_value_ = std::max(max_value_, value);
}

double Histogram::percentile(double q) const noexcept {
  RFH_ASSERT(q > 0.0 && q <= 1.0);
  if (total_weight_ == 0.0) return 0.0;
  const double target = q * total_weight_;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (weights_[i] == 0.0) continue;
    if (cumulative + weights_[i] >= target) {
      // Linear interpolation inside the bucket.
      const double within = (target - cumulative) / weights_[i];
      return bucket_lo(i) + within * (bucket_hi(i) - bucket_lo(i));
    }
    cumulative += weights_[i];
  }
  return max_value_;
}

double Histogram::fraction_at_or_below(double value) const noexcept {
  if (total_weight_ == 0.0) return 1.0;
  const std::size_t limit = bucket_of(value);
  double below = 0.0;
  for (std::size_t i = 0; i <= limit; ++i) below += weights_[i];
  return below / total_weight_;
}

std::vector<double> Histogram::quantiles(std::span<const double> qs) const {
  std::vector<double> out(qs.size(), 0.0);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    RFH_ASSERT(qs[i] > 0.0 && qs[i] <= 1.0);
    RFH_ASSERT_MSG(i == 0 || qs[i] >= qs[i - 1],
                   "quantile grid must be ascending");
  }
  if (total_weight_ == 0.0) return out;
  std::size_t qi = 0;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < kBuckets && qi < qs.size(); ++i) {
    if (weights_[i] == 0.0) continue;
    while (qi < qs.size() &&
           cumulative + weights_[i] >= qs[qi] * total_weight_) {
      const double within =
          (qs[qi] * total_weight_ - cumulative) / weights_[i];
      out[qi] = bucket_lo(i) + within * (bucket_hi(i) - bucket_lo(i));
      ++qi;
    }
    cumulative += weights_[i];
  }
  // Floating-point shortfall at q=1.0: the running sum can end a hair
  // below the target, exactly as percentile() falls through to max.
  for (; qi < qs.size(); ++qi) out[qi] = max_value_;
  return out;
}

void Histogram::append_json(std::string& out,
                            std::span<const double> qs) const {
  const auto fmt = [&out](double value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    out += buf;
  };
  const std::vector<double> values = quantiles(qs);
  out += "{\"count\":";
  fmt(total_weight_);
  out += ",\"mean\":";
  fmt(mean());
  out += ",\"max\":";
  fmt(max_value_);
  out += ",\"quantiles\":{";
  for (std::size_t i = 0; i < qs.size(); ++i) {
    if (i > 0) out += ',';
    char key[16];
    std::snprintf(key, sizeof key, "%g", qs[i]);
    out += '"';
    out += key;
    out += "\":";
    fmt(values[i]);
  }
  out += "}}";
}

std::string Histogram::to_json(std::span<const double> qs) const {
  std::string out;
  append_json(out, qs);
  return out;
}

void Histogram::merge(const Histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) weights_[i] += other.weights_[i];
  total_weight_ += other.total_weight_;
  weighted_sum_ += other.weighted_sum_;
  max_value_ = std::max(max_value_, other.max_value_);
}

}  // namespace rfh
