// Component microbenchmarks (google-benchmark): the hot paths of the
// simulator, so regressions in the substrate are visible independently
// of the figure-level experiments.
#include <benchmark/benchmark.h>

#include "common/erlang.h"
#include "common/rng.h"
#include "harness/scenario.h"
#include "net/graph.h"
#include "net/shortest_paths.h"
#include "ring/chord.h"
#include "ring/ring.h"
#include "routing/router.h"
#include "sim/engine.h"
#include "topology/world.h"

namespace {

void BM_ErlangB(benchmark::State& state) {
  const auto channels = static_cast<std::uint32_t>(state.range(0));
  double offered = 0.7 * channels;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfh::erlang_b(offered, channels));
    offered += 1e-9;  // defeat constant folding across iterations
  }
}
BENCHMARK(BM_ErlangB)->Arg(8)->Arg(64)->Arg(512);

void BM_PoissonSample(benchmark::State& state) {
  rfh::Rng rng(7);
  const double mean = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.poisson(mean));
  }
}
BENCHMARK(BM_PoissonSample)->Arg(3)->Arg(300);

void BM_ZipfSample(benchmark::State& state) {
  rfh::Rng rng(7);
  rfh::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(64)->Arg(4096);

void BM_RingLookup(benchmark::State& state) {
  rfh::HashRing ring(16);
  const auto servers = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t s = 0; s < servers; ++s) {
    ring.add_server(rfh::ServerId{s});
  }
  rfh::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.primary(rng.next()));
  }
}
BENCHMARK(BM_RingLookup)->Arg(100)->Arg(1000);

void BM_RingJoin(benchmark::State& state) {
  const auto servers = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    rfh::HashRing ring(16);
    for (std::uint32_t s = 0; s < servers; ++s) {
      ring.add_server(rfh::ServerId{s});
    }
    state.ResumeTiming();
    ring.add_server(rfh::ServerId{servers});
  }
}
BENCHMARK(BM_RingJoin)->Arg(100)->Arg(1000);

void BM_AllPairsShortestPaths(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const rfh::World world = rfh::build_synthetic_world(n);
  const rfh::DcGraph graph(world.topology.datacenter_count(), world.links);
  for (auto _ : state) {
    rfh::ShortestPaths paths(graph);
    benchmark::DoNotOptimize(&paths);
  }
}
BENCHMARK(BM_AllPairsShortestPaths)->Arg(10)->Arg(50)->Arg(200);

void BM_RouteExpansion(benchmark::State& state) {
  const rfh::World world = rfh::build_paper_world();
  const rfh::DcGraph graph(world.topology.datacenter_count(), world.links);
  const rfh::ShortestPaths paths(graph);
  const rfh::Router router(world.topology, paths);
  rfh::SimConfig config;
  rfh::ClusterState cluster(world.topology, config);
  const rfh::ServerId holder =
      cluster.ring().partition_owner(rfh::PartitionId{0});
  std::uint32_t requester = 0;
  for (auto _ : state) {
    const auto route = router.route(
        rfh::PartitionId{0}, rfh::DatacenterId{requester}, holder,
        cluster.live_by_dc());
    benchmark::DoNotOptimize(&route);
    requester = (requester + 1) % 10;
  }
}
BENCHMARK(BM_RouteExpansion);

void BM_ChordLookup(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::vector<rfh::ServerId> members;
  for (std::uint32_t s = 0; s < n; ++s) members.push_back(rfh::ServerId{s});
  const rfh::ChordOverlay overlay(members);
  rfh::Rng rng(17);
  double total_hops = 0.0;
  std::uint64_t lookups = 0;
  for (auto _ : state) {
    const rfh::ServerId origin{static_cast<std::uint32_t>(rng.uniform(n))};
    const auto result = overlay.lookup(origin, rng.next());
    benchmark::DoNotOptimize(result.owner);
    total_hops += result.hops;
    ++lookups;
  }
  state.counters["hops"] = total_hops / static_cast<double>(lookups);
}
BENCHMARK(BM_ChordLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SimulationEpoch(benchmark::State& state) {
  const auto kind = static_cast<rfh::PolicyKind>(state.range(0));
  const rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  auto sim = rfh::make_simulation(scenario, kind);
  sim->run(20);  // warm past the build-out phase
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->step());
  }
  state.SetLabel(std::string(rfh::policy_name(kind)));
}
BENCHMARK(BM_SimulationEpoch)
    ->Arg(static_cast<int>(rfh::PolicyKind::kRequest))
    ->Arg(static_cast<int>(rfh::PolicyKind::kOwner))
    ->Arg(static_cast<int>(rfh::PolicyKind::kRandom))
    ->Arg(static_cast<int>(rfh::PolicyKind::kRfh));

}  // namespace
