#include "sim/cluster.h"

#include <algorithm>

#include "common/assert.h"

namespace rfh {

ClusterState::ClusterState(const Topology& topology, const SimConfig& config)
    : topology_(&topology),
      config_(&config),
      partitions_(config.partitions),
      servers_(static_cast<std::uint32_t>(topology.server_count())),
      live_by_dc_(topology.datacenter_count()),
      ring_(config.ring_tokens_per_server) {
  servers_.bring_all_up();
  std::vector<ServerId> all;
  all.reserve(topology.server_count());
  for (const Server& s : topology.servers()) {
    all.push_back(s.id);
    live_by_dc_[s.datacenter.value()].push_back(s.id);
  }
  ring_.add_servers(all);
}

void ClusterState::add_replica(PartitionId p, ServerId s, bool primary) {
  RFH_ASSERT_MSG(alive(s), "cannot place a copy on a dead server");
  if (primary) {
    RFH_ASSERT_MSG(!primary_of(p).valid(), "partition already has a primary");
  }
  partitions_.add(p, s, primary);
  servers_.add_storage(s, config_->unit_size());
  servers_.inc_copies(s);
}

void ClusterState::remove_replica(PartitionId p, ServerId s) {
  partitions_.remove(p, s);
  servers_.sub_storage(s, config_->unit_size());
  servers_.dec_copies(s);
}

void ClusterState::set_primary(PartitionId p, ServerId s) {
  partitions_.set_primary(p, s);
}

ServerId ClusterState::primary_of(PartitionId p) const {
  return partitions_.primary_of(p);
}

std::span<const Replica> ClusterState::replicas_of(PartitionId p) const {
  return partitions_.replicas(p);
}

bool ClusterState::has_replica(PartitionId p, ServerId s) const {
  return partitions_.has(p, s);
}

std::uint32_t ClusterState::replica_count(PartitionId p) const {
  return partitions_.count(p);
}

std::vector<ServerId> ClusterState::hosts_in_dc(PartitionId p,
                                                DatacenterId dc) const {
  std::vector<ServerId> out;
  hosts_in_dc_into(p, dc, out);
  return out;
}

void ClusterState::hosts_in_dc_into(PartitionId p, DatacenterId dc,
                                    std::vector<ServerId>& out) const {
  out.clear();
  ServerId primary = ServerId::invalid();
  for (const Replica& r : replicas_of(p)) {
    if (topology_->server(r.server).datacenter == dc) {
      if (r.primary) {
        primary = r.server;
      } else {
        out.push_back(r.server);
      }
    }
  }
  std::sort(out.begin(), out.end());
  if (primary.valid()) out.push_back(primary);
}

Bytes ClusterState::storage_used(ServerId s) const {
  return servers_.storage_used(s);
}

double ClusterState::storage_fraction(ServerId s) const {
  const Bytes cap = topology_->server(s).spec.storage_capacity;
  return cap == 0 ? 1.0
                  : static_cast<double>(storage_used(s)) /
                        static_cast<double>(cap);
}

std::uint32_t ClusterState::copies_on(ServerId s) const {
  return servers_.copies(s);
}

bool ClusterState::can_accept(ServerId s, PartitionId p) const {
  if (!alive(s) || has_replica(p, s)) return false;
  const ServerSpec& spec = topology_->server(s).spec;
  if (copies_on(s) >= spec.max_vnodes) return false;
  if (config_->redundancy == RedundancyMode::kErasure) {
    // Zone diversity: no datacenter may hold more than m fragments of a
    // stripe, so losing one whole DC can never destroy more fragments
    // than the stripe's parity budget tolerates.
    const DatacenterId dc = topology_->server(s).datacenter;
    std::uint32_t in_dc = 0;
    for (const Replica& r : replicas_of(p)) {
      if (topology_->server(r.server).datacenter == dc) ++in_dc;
    }
    if (in_dc >= config_->ec_m) return false;
  }
  const auto projected =
      static_cast<double>(storage_used(s) + config_->unit_size());
  return projected <=
         config_->storage_limit * static_cast<double>(spec.storage_capacity);
}

bool ClusterState::alive(ServerId s) const { return servers_.alive(s); }

std::vector<ClusterState::LostCopy> ClusterState::take_down(ServerId s) {
  RFH_ASSERT_MSG(alive(s), "server already dead");
  std::vector<LostCopy> lost;
  for (std::uint32_t p = 0; p < partitions_.partitions(); ++p) {
    const PartitionId pid{p};
    if (has_replica(pid, s)) {
      const bool was_primary = primary_of(pid) == s;
      remove_replica(pid, s);
      lost.push_back(LostCopy{pid, was_primary});
    }
  }
  servers_.set_alive(s, false);
  live_list_erase(s);
  return lost;
}

std::vector<ClusterState::LostCopy> ClusterState::kill_server(ServerId s) {
  std::vector<LostCopy> lost = take_down(s);
  ring_.remove_server(s);
  return lost;
}

void ClusterState::kill_servers(
    std::span<const ServerId> servers,
    const std::function<void(ServerId, std::span<const LostCopy>)>&
        on_killed) {
  for (const ServerId s : servers) {
    const std::vector<LostCopy> lost = take_down(s);
    if (on_killed) on_killed(s, lost);
  }
  ring_.remove_servers(servers);
}

void ClusterState::revive_server(ServerId s) {
  servers_.set_alive(s, true);
  ring_.add_server(s);
  live_list_insert(s);
}

void ClusterState::revive_servers(std::span<const ServerId> servers) {
  if (servers.empty()) return;
  for (const ServerId s : servers) {
    servers_.set_alive(s, true);
    live_list_insert(s);
  }
  ring_.add_servers(servers);
}

void ClusterState::live_list_insert(ServerId s) {
  std::vector<ServerId>& list =
      live_by_dc_[topology_->server(s).datacenter.value()];
  const auto it = std::lower_bound(list.begin(), list.end(), s);
  RFH_ASSERT(it == list.end() || *it != s);
  list.insert(it, s);
}

void ClusterState::live_list_erase(ServerId s) {
  std::vector<ServerId>& list =
      live_by_dc_[topology_->server(s).datacenter.value()];
  const auto it = std::lower_bound(list.begin(), list.end(), s);
  RFH_ASSERT(it != list.end() && *it == s);
  list.erase(it);
}

void ClusterState::check_invariants() const {
  std::vector<Bytes> used(topology_->server_count(), 0);
  std::vector<std::uint32_t> copies(topology_->server_count(), 0);
  std::uint32_t total = 0;
  for (std::uint32_t p = 0; p < partitions_.partitions(); ++p) {
    std::uint32_t primaries = 0;
    for (const Replica& r : partitions_.replicas(PartitionId{p})) {
      RFH_ASSERT_MSG(alive(r.server), "copy on dead server");
      used[r.server.value()] += config_->unit_size();
      copies[r.server.value()] += 1;
      total += 1;
      if (r.primary) ++primaries;
    }
    RFH_ASSERT_MSG(primaries <= 1, "multiple primaries");
    if (partitions_.count(PartitionId{p}) > 0) {
      RFH_ASSERT_MSG(primaries == 1, "partition without a primary");
    }
  }
  RFH_ASSERT(total == partitions_.total());
  for (std::uint32_t s = 0; s < topology_->server_count(); ++s) {
    const ServerId sid{s};
    RFH_ASSERT(used[s] == servers_.storage_used(sid));
    RFH_ASSERT(copies[s] == servers_.copies(sid));
    if (!alive(sid)) {
      RFH_ASSERT_MSG(copies[s] == 0, "dead server hosts copies");
    }
  }
  std::uint32_t live_listed = 0;
  for (const std::vector<ServerId>& list : live_by_dc_) {
    RFH_ASSERT(std::is_sorted(list.begin(), list.end()));
    for (const ServerId s : list) RFH_ASSERT(alive(s));
    live_listed += static_cast<std::uint32_t>(list.size());
  }
  RFH_ASSERT(live_listed == servers_.live_count());
}

}  // namespace rfh
