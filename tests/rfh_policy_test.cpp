// Branch coverage for the RFH decision tree (paper Fig. 2) under
// controlled, fully deterministic workloads.
#include "core/rfh_policy.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/availability.h"
#include "test_util.h"

namespace rfh {
namespace {

SimConfig small_config(std::uint32_t partitions = 2) {
  SimConfig config;
  config.partitions = partitions;
  return config;
}

std::uint32_t rmin(const SimConfig& config) {
  return min_replicas(config.min_availability, config.failure_rate);
}

TEST(RfhDecisionTree, RestoresAvailabilityFloorWithoutAnyTraffic) {
  // Fig. 2 branch 1: below the minimum availability, replicate even if
  // nothing is overloaded — here even with zero queries.
  const SimConfig config = small_config();
  auto sim = test::make_fixed_sim({}, std::make_unique<RfhPolicy>(), config);
  for (int e = 0; e < 5; ++e) sim->step();
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    EXPECT_GE(sim->cluster().replica_count(PartitionId{p}), rmin(config));
  }
}

TEST(RfhDecisionTree, FloorCopiesPreferForwardingNodesWhenTrafficExists) {
  const SimConfig config = small_config(1);
  const PartitionId p{0};
  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                    config);
  const ServerId holder = probe->cluster().primary_of(p);
  const DatacenterId holder_dc = probe->topology().server(holder).datacenter;
  // A remote requester at least 2 hops out.
  DatacenterId requester;
  for (const Datacenter& dc : probe->topology().datacenters()) {
    if (probe->paths().hop_count(dc.id, holder_dc) >= 2) {
      requester = dc.id;
      break;
    }
  }
  ASSERT_TRUE(requester.valid());
  const auto route_dcs = probe->paths().path(requester, holder_dc);

  auto sim = test::make_fixed_sim({QueryFlow{p, requester, 1.0}},
                                  std::make_unique<RfhPolicy>(), config);
  for (int e = 0; e < 4; ++e) sim->step();
  ASSERT_GE(sim->cluster().replica_count(p), 2u);
  // The floor copy sits on the query route (a forwarding node), not on a
  // random datacenter.
  bool on_route = false;
  for (const Replica& r : sim->cluster().replicas_of(p)) {
    if (r.primary) continue;
    const DatacenterId dc = sim->topology().server(r.server).datacenter;
    for (const DatacenterId road : route_dcs) {
      if (dc == road) on_route = true;
    }
  }
  EXPECT_TRUE(on_route);
}

TEST(RfhDecisionTree, OverloadGrowsReplicasAtTrafficHubs) {
  const SimConfig config = small_config(1);
  const PartitionId p{0};
  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                    config);
  const ServerId holder = probe->cluster().primary_of(p);
  const DatacenterId holder_dc = probe->topology().server(holder).datacenter;
  DatacenterId requester;
  for (const Datacenter& dc : probe->topology().datacenters()) {
    if (probe->paths().hop_count(dc.id, holder_dc) >= 2) {
      requester = dc.id;
    }
  }
  ASSERT_TRUE(requester.valid());
  const auto route_dcs = probe->paths().path(requester, holder_dc);

  // Demand far beyond one replica's capacity (uniform capacity 2).
  auto sim = test::make_fixed_sim({QueryFlow{p, requester, 20.0}},
                                  std::make_unique<RfhPolicy>(), config);
  for (int e = 0; e < 30; ++e) sim->step();

  EXPECT_GT(sim->cluster().replica_count(p), rmin(config));
  // Every non-primary copy lives on the single query route.
  std::set<std::uint32_t> route_set;
  for (const DatacenterId dc : route_dcs) route_set.insert(dc.value());
  for (const Replica& r : sim->cluster().replicas_of(p)) {
    if (r.primary) continue;
    EXPECT_TRUE(route_set.contains(
        sim->topology().server(r.server).datacenter.value()))
        << "copy off the only query route";
  }
  // And the demand ends up served.
  EXPECT_NEAR(sim->traffic().unserved(p), 0.0, 1e-9);
}

TEST(RfhDecisionTree, OverloadRequiresConsecutiveEpochs) {
  // With overload_streak_epochs = 3, a holder overloaded for only the
  // first epoch (then quiet) must not trigger growth beyond the floor.
  const SimConfig config = small_config(1);
  const PartitionId p{0};
  RfhPolicy::Options options;
  options.overload_streak_epochs = 3;

  // One huge epoch, then silence.
  std::vector<QueryBatch> schedule;
  schedule.push_back({QueryFlow{p, DatacenterId{1}, 50.0}});
  schedule.push_back({});
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<test::ScheduledWorkload>(schedule),
      std::make_unique<RfhPolicy>(options));
  for (int e = 0; e < 6; ++e) sim->step();
  EXPECT_LE(sim->cluster().replica_count(p), rmin(config));
}

TEST(RfhDecisionTree, SuicideReclaimsColdReplicas) {
  // Build up under heavy load, then cut the workload: copies above the
  // floor must remove themselves (Eq. 15), and never below the floor.
  const SimConfig config = small_config(1);
  const PartitionId p{0};
  std::vector<QueryBatch> schedule;
  for (int e = 0; e < 40; ++e) {
    schedule.push_back({QueryFlow{p, DatacenterId{7}, 20.0}});
  }
  // Low but nonzero demand afterwards keeps q_bar alive while leaving all
  // copies cold.
  schedule.push_back({QueryFlow{p, DatacenterId{7}, 0.5}});

  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<test::ScheduledWorkload>(schedule),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 40; ++e) sim->step();
  const std::uint32_t peak = sim->cluster().replica_count(p);
  ASSERT_GT(peak, rmin(config));
  std::uint32_t suicides = 0;
  for (int e = 0; e < 60; ++e) {
    suicides += sim->step().suicides;
  }
  EXPECT_GT(suicides, 0u);
  EXPECT_LT(sim->cluster().replica_count(p), peak);
  EXPECT_GE(sim->cluster().replica_count(p), rmin(config));
}

TEST(RfhDecisionTree, SuicideDisabledKeepsEveryCopy) {
  const SimConfig config = small_config(1);
  const PartitionId p{0};
  RfhPolicy::Options options;
  options.enable_suicide = false;
  std::vector<QueryBatch> schedule;
  for (int e = 0; e < 40; ++e) {
    schedule.push_back({QueryFlow{p, DatacenterId{7}, 20.0}});
  }
  schedule.push_back({QueryFlow{p, DatacenterId{7}, 0.5}});
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<test::ScheduledWorkload>(schedule),
      std::make_unique<RfhPolicy>(options));
  std::uint32_t suicides = 0;
  for (int e = 0; e < 100; ++e) suicides += sim->step().suicides;
  EXPECT_EQ(suicides, 0u);
}

TEST(RfhDecisionTree, MigrationFollowsTheCrowd) {
  // Phase 1: heavy demand from one side builds copies there. Phase 2: the
  // demand moves to the opposite side; with migration enabled some of the
  // now-cold copies must be *moved* (not just re-replicated).
  const SimConfig config = small_config(1);
  const PartitionId p{0};
  std::vector<QueryBatch> schedule;
  for (int e = 0; e < 60; ++e) {
    schedule.push_back({QueryFlow{p, DatacenterId{9}, 18.0}});
  }
  for (int e = 0; e < 80; ++e) {
    schedule.push_back({QueryFlow{p, DatacenterId{5}, 18.0}});
  }
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<test::ScheduledWorkload>(schedule),
      std::make_unique<RfhPolicy>());
  std::uint32_t migrations = 0;
  for (int e = 0; e < 140; ++e) migrations += sim->step().migrations;
  EXPECT_GT(migrations, 0u);
}

TEST(RfhDecisionTree, MigrationDisabledNeverMigrates) {
  const SimConfig config = small_config(1);
  const PartitionId p{0};
  RfhPolicy::Options options;
  options.enable_migration = false;
  std::vector<QueryBatch> schedule;
  for (int e = 0; e < 60; ++e) {
    schedule.push_back({QueryFlow{p, DatacenterId{9}, 18.0}});
  }
  for (int e = 0; e < 80; ++e) {
    schedule.push_back({QueryFlow{p, DatacenterId{5}, 18.0}});
  }
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<test::ScheduledWorkload>(schedule),
      std::make_unique<RfhPolicy>(options));
  std::uint32_t migrations = 0;
  for (int e = 0; e < 140; ++e) migrations += sim->step().migrations;
  EXPECT_EQ(migrations, 0u);
}

TEST(RfhDecisionTree, ReplicaCountNeverExceedsCap) {
  SimConfig config = small_config(1);
  config.max_replicas_per_partition = 4;
  const PartitionId p{0};
  auto sim = test::make_fixed_sim({QueryFlow{p, DatacenterId{8}, 500.0}},
                                  std::make_unique<RfhPolicy>(), config);
  for (int e = 0; e < 50; ++e) {
    sim->step();
    EXPECT_LE(sim->cluster().replica_count(p), 4u);
  }
}

TEST(RfhDecisionTree, NearOwnerPlacementStaysNearOwner) {
  const SimConfig config = small_config(1);
  const PartitionId p{0};
  RfhPolicy::Options options;
  options.placement = RfhPolicy::Options::Placement::kNearOwner;
  auto sim = test::make_fixed_sim({QueryFlow{p, DatacenterId{8}, 20.0}},
                                  std::make_unique<RfhPolicy>(options),
                                  config);
  for (int e = 0; e < 20; ++e) sim->step();
  ASSERT_GT(sim->cluster().replica_count(p), 1u);
  const ServerId holder = sim->cluster().primary_of(p);
  const DatacenterId home = sim->topology().server(holder).datacenter;
  // The nearest distinct datacenter hosts the first non-primary copy.
  double nearest = 1e18;
  DatacenterId nearest_dc;
  for (const Datacenter& dc : sim->topology().datacenters()) {
    if (dc.id == home) continue;
    const double d = sim->topology().distance_km(home, dc.id);
    if (d < nearest) {
      nearest = d;
      nearest_dc = dc.id;
    }
  }
  bool found_near = false;
  for (const Replica& r : sim->cluster().replicas_of(p)) {
    if (!r.primary &&
        sim->topology().server(r.server).datacenter == nearest_dc) {
      found_near = true;
    }
  }
  EXPECT_TRUE(found_near);
}

TEST(RfhDecisionTree, TopHubsLimitRespected) {
  // With top_hubs = 1, only the single hottest forwarding node is ever a
  // target; growth still happens but placement is the argmax hub.
  const SimConfig config = small_config(1);
  RfhPolicy::Options options;
  options.top_hubs = 1;
  auto sim = test::make_fixed_sim(
      {QueryFlow{PartitionId{0}, DatacenterId{8}, 20.0}},
      std::make_unique<RfhPolicy>(options), config);
  for (int e = 0; e < 20; ++e) sim->step();
  EXPECT_GT(sim->cluster().replica_count(PartitionId{0}), 1u);
}

TEST(RfhPolicy, NameAndOptionsAccessors) {
  RfhPolicy::Options options;
  options.top_hubs = 5;
  RfhPolicy policy(options);
  EXPECT_EQ(policy.name(), "RFH");
  EXPECT_EQ(policy.options().top_hubs, 5u);
}

}  // namespace
}  // namespace rfh
