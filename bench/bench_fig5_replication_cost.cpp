// Fig. 5 — replication cost (Eq. 1, cumulative).
//   (a) total, random query            (b) average per replication, random
//   (c) total, flash crowd             (d) average per replication, flash
//
// Paper shape: random pays the most in total and average; RFH the lowest
// total under both settings; under flash crowd RFH's *average* cost rises
// above owner-oriented's (hubs sit away from the owner) while its total
// stays lowest.
#include <iostream>

#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  {
    const rfh::Scenario s = rfh::Scenario::paper_random_query();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure(std::cout,
                      "Fig 5(a): total replication cost, random query", r,
                      &rfh::EpochMetrics::replication_cost_total);
    rfh::print_figure(std::cout,
                      "Fig 5(b): avg replication cost, random query", r,
                      &rfh::EpochMetrics::replication_cost_avg);
  }
  {
    const rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure(std::cout,
                      "Fig 5(c): total replication cost, flash crowd", r,
                      &rfh::EpochMetrics::replication_cost_total);
    rfh::print_figure(std::cout,
                      "Fig 5(d): avg replication cost, flash crowd", r,
                      &rfh::EpochMetrics::replication_cost_avg);
  }
  return 0;
}
