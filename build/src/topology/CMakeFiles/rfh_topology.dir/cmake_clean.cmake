file(REMOVE_RECURSE
  "CMakeFiles/rfh_topology.dir/geo.cpp.o"
  "CMakeFiles/rfh_topology.dir/geo.cpp.o.d"
  "CMakeFiles/rfh_topology.dir/label.cpp.o"
  "CMakeFiles/rfh_topology.dir/label.cpp.o.d"
  "CMakeFiles/rfh_topology.dir/topology.cpp.o"
  "CMakeFiles/rfh_topology.dir/topology.cpp.o.d"
  "CMakeFiles/rfh_topology.dir/world.cpp.o"
  "CMakeFiles/rfh_topology.dir/world.cpp.o.d"
  "librfh_topology.a"
  "librfh_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
