// Consistent-hashing ring with virtual nodes (paper Section II-B).
//
// "The partitioning scheme of RFH is built using a variant of consistent
// hashing. A ring topology is employed as the output range of a hash
// function. Each node is assigned a random value within the hashing space
// to represent its position."
//
// Each physical server owns `tokens` positions (virtual-node tokens) on a
// 64-bit ring. A partition's primary owner is the server owning the first
// token clockwise from the partition's hash; Dynamo-style replica chains
// are the next distinct servers clockwise. Join and departure move only
// the keyspace adjacent to the affected tokens, which the tests verify
// quantitatively.
//
// Storage layout: the ring is a flat array of (position, owner) entries
// kept sorted by position, so a lookup is one binary search over
// contiguous memory instead of a std::map node walk (membership changes
// are epoch-granular and rare; lookups are the hot path). Each token
// additionally carries a lazily built successor list — the distinct
// servers met walking clockwise from it — so preference_list is a slice
// copy after the first query per token. Both caches are invalidated as a
// whole whenever membership changes (the "membership epoch" bump); the
// results are defined to be byte-identical to the map-walk seed
// implementation, which tests/property_test.cpp checks against a
// std::map reference under randomized add/remove interleavings.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace rfh {

class HashRing {
 public:
  /// tokens: virtual-node positions created per server (Dynamo's "number
  /// of virtual nodes" knob; more tokens -> smoother key distribution).
  explicit HashRing(std::uint32_t tokens_per_server = 16);

  void add_server(ServerId server);
  void remove_server(ServerId server);
  [[nodiscard]] bool contains(ServerId server) const;

  /// The server owning the first token at or clockwise after `key`.
  [[nodiscard]] ServerId primary(std::uint64_t key) const;

  /// Up to `n` *distinct* servers starting at the primary and walking
  /// clockwise (the Dynamo preference list for the key).
  [[nodiscard]] std::vector<ServerId> preference_list(std::uint64_t key,
                                                      std::size_t n) const;

  /// Primary owner for a partition id.
  [[nodiscard]] ServerId partition_owner(PartitionId partition) const;

  [[nodiscard]] std::size_t server_count() const noexcept {
    return server_tokens_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return ring_.empty(); }

  /// Bumped on every add_server/remove_server; consumers caching derived
  /// placement (route memos, successor snapshots) compare epochs to know
  /// when to rebuild.
  [[nodiscard]] std::uint64_t membership_epoch() const noexcept {
    return membership_epoch_;
  }

  /// Hash position used for a partition (exposed for tests).
  [[nodiscard]] static std::uint64_t partition_key(PartitionId partition);

 private:
  struct Token {
    std::uint64_t position = 0;
    ServerId owner;
  };

  /// Index of the first token at or after `key`, wrapping to 0 past the
  /// end. Ring must be non-empty.
  [[nodiscard]] std::size_t successor_slot(std::uint64_t key) const;
  [[nodiscard]] bool has_token_at(std::uint64_t position) const;
  /// The slot's distinct-server clockwise walk, built on first use after
  /// a membership change.
  [[nodiscard]] const std::vector<ServerId>& successors_of(
      std::size_t slot) const;

  std::uint32_t tokens_per_server_;
  std::vector<Token> ring_;  // sorted by position
  std::unordered_map<ServerId, std::vector<std::uint64_t>> server_tokens_;
  std::uint64_t membership_epoch_ = 0;
  /// successor_cache_[slot] is empty until queried (a ring with servers
  /// always has at least one distinct successor, so empty == not built).
  mutable std::vector<std::vector<ServerId>> successor_cache_;
};

}  // namespace rfh
