// The owner-oriented comparator (paper refs [7][11][12][13]: Oceanstore,
// PAST, CFS, Overlook).
//
// "The coordinator considers maximizing availability while minimizing
// replication cost" (Eq. 1: c = d*f*s/b): new copies go to the *nearest
// distinct datacenter* without one (availability level 5 at the smallest
// distance d), falling back to a different rack in the home datacenter
// when everything remote is saturated. Migration exists but its condition
// — a strictly better availability-per-cost placement — "actually happens
// only when physical nodes are added into or removed from the system", so
// the policy only scans for better placements on epochs where cluster
// membership changed. No suicide.
#pragma once

#include <string_view>

#include "sim/policy.h"

namespace rfh {

class OwnerOrientedPolicy final : public ReplicationPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "Owner"; }
  [[nodiscard]] Actions decide(const PolicyContext& ctx) override;

 private:
  /// Best replication target for p around its owner; invalid if none.
  [[nodiscard]] static ServerId best_target(const PolicyContext& ctx,
                                            PartitionId p);

  std::uint32_t last_live_count_ = 0;
  bool seen_first_epoch_ = false;
};

}  // namespace rfh
