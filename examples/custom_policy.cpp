// Extending the library: a user-defined replication policy.
//
// `PinnedPolicy` keeps exactly one copy of every partition in each of a
// fixed set of datacenters (a common compliance pattern: "one copy per
// jurisdiction"), demonstrating the ReplicationPolicy extension point the
// comparators and RFH itself are built on.
//
//   $ ./custom_policy
#include <cstdio>
#include <string_view>

#include "core/selection.h"
#include "harness/scenario.h"
#include "sim/engine.h"

namespace {

class PinnedPolicy final : public rfh::ReplicationPolicy {
 public:
  explicit PinnedPolicy(std::vector<rfh::DatacenterId> pinned)
      : pinned_(std::move(pinned)) {}

  [[nodiscard]] std::string_view name() const override { return "Pinned"; }

  [[nodiscard]] rfh::Actions decide(const rfh::PolicyContext& ctx) override {
    rfh::Actions actions;
    for (std::uint32_t pv = 0; pv < ctx.config.partitions; ++pv) {
      const rfh::PartitionId p{pv};
      if (!ctx.cluster.primary_of(p).valid()) continue;
      for (const rfh::DatacenterId dc : pinned_) {
        if (!ctx.cluster.hosts_in_dc(p, dc).empty()) continue;
        const rfh::ServerId target = rfh::select_server_erlang_b(ctx, dc, p);
        if (target.valid()) {
          actions.replications.push_back(rfh::ReplicateAction{p, target, {}});
          break;  // one copy per epoch per partition
        }
      }
    }
    return actions;
  }

 private:
  std::vector<rfh::DatacenterId> pinned_;
};

}  // namespace

int main() {
  const rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  rfh::World world = rfh::build_paper_world(scenario.world);

  // Pin one copy to the USA (A), Switzerland (F) and Japan (I).
  std::vector<rfh::DatacenterId> pinned{
      world.by_letter('A'), world.by_letter('F'), world.by_letter('I')};

  auto workload = rfh::make_workload(scenario, world);
  rfh::Simulation sim(std::move(world), scenario.sim, std::move(workload),
                      std::make_unique<PinnedPolicy>(pinned));

  for (rfh::Epoch e = 0; e < 50; ++e) sim.step();

  // Verify the pin: every partition has a copy in each pinned datacenter.
  std::uint32_t satisfied = 0;
  for (std::uint32_t pv = 0; pv < scenario.sim.partitions; ++pv) {
    bool all = true;
    for (const rfh::DatacenterId dc : pinned) {
      if (sim.cluster().hosts_in_dc(rfh::PartitionId{pv}, dc).empty()) {
        all = false;
      }
    }
    if (all) ++satisfied;
  }
  std::printf("after 50 epochs: %u/%u partitions satisfy the 3-region pin, "
              "%u total copies\n",
              satisfied, scenario.sim.partitions,
              sim.cluster().total_replicas());
  return 0;
}
