// Human-readable rendering of trace events — the "story" a trace tells.
//
// describe_event() turns one event into a one-line sentence including the
// decision explanation when present; partition_story() filters a captured
// event stream down to one partition's lifecycle. Used by
// examples/trace_explain.cpp and handy from a debugger.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "obs/events.h"

namespace rfh {

/// One-line human-readable sentence, e.g.
///   "epoch  12 ReplicaAdded      partition 5 -> server 17 (cost 3.2) because
///    tr >= beta*q_bar (Eq. 12): 41.3 >= 24.0 [q_bar=12.0]"
[[nodiscard]] std::string describe_event(const Event& event);

/// True when the event concerns the given partition (epoch summaries and
/// server/link events are excluded — they are cluster-wide).
[[nodiscard]] bool event_concerns(const Event& event, PartitionId partition);

/// The subset of `events` concerning `partition`, rendered in order.
[[nodiscard]] std::vector<std::string> partition_story(
    std::span<const Event> events, PartitionId partition);

}  // namespace rfh
