#include "sim/stats.h"

#include <gtest/gtest.h>

namespace rfh {
namespace {

constexpr std::size_t kPartitions = 4;
constexpr std::size_t kServers = 6;
constexpr std::size_t kDatacenters = 3;

EpochTraffic make_traffic() {
  return EpochTraffic(kPartitions, kServers, kDatacenters);
}

TEST(TrafficStats, FirstUpdateInitializesDirectly) {
  TrafficStats stats(kPartitions, kServers, kDatacenters, 0.2);
  EXPECT_FALSE(stats.initialized());

  EpochTraffic traffic = make_traffic();
  traffic.partition_queries_mut(PartitionId{0}) = 30.0;
  traffic.node_traffic_mut(PartitionId{0}, ServerId{2}) = 12.0;
  traffic.requester_queries_mut(PartitionId{0}, DatacenterId{1}) = 7.0;
  traffic.server_work_mut(ServerId{2}) = 9.0;
  stats.update(traffic);

  EXPECT_TRUE(stats.initialized());
  // q_bar is the per-requester average: 30 / 3 datacenters.
  EXPECT_DOUBLE_EQ(stats.avg_query(PartitionId{0}), 10.0);
  EXPECT_DOUBLE_EQ(stats.node_traffic(PartitionId{0}, ServerId{2}), 12.0);
  EXPECT_DOUBLE_EQ(stats.requester_queries(PartitionId{0}, DatacenterId{1}),
                   7.0);
  EXPECT_DOUBLE_EQ(stats.server_arrival(ServerId{2}), 9.0);
}

TEST(TrafficStats, EwmaFollowsPaperOrientation) {
  TrafficStats stats(kPartitions, kServers, kDatacenters, 0.2);
  EpochTraffic traffic = make_traffic();
  traffic.node_traffic_mut(PartitionId{1}, ServerId{0}) = 10.0;
  stats.update(traffic);

  traffic.reset();
  traffic.node_traffic_mut(PartitionId{1}, ServerId{0}) = 0.0;
  stats.update(traffic);
  // v = 0.2 * 10 + 0.8 * 0 (Eq. 11, alpha weights history).
  EXPECT_DOUBLE_EQ(stats.node_traffic(PartitionId{1}, ServerId{0}), 2.0);

  traffic.reset();
  traffic.node_traffic_mut(PartitionId{1}, ServerId{0}) = 5.0;
  stats.update(traffic);
  EXPECT_DOUBLE_EQ(stats.node_traffic(PartitionId{1}, ServerId{0}),
                   0.2 * 2.0 + 0.8 * 5.0);
}

TEST(TrafficStats, FlippedOrientationWeightsTheNewSample) {
  // alpha_weights_history = false: v = (1-alpha)*v_old + alpha*x, so
  // alpha = 0.2 smooths strongly instead of adapting fast.
  TrafficStats stats(kPartitions, kServers, kDatacenters, 0.2,
                     /*alpha_weights_history=*/false);
  EpochTraffic traffic = make_traffic();
  traffic.node_traffic_mut(PartitionId{1}, ServerId{0}) = 10.0;
  stats.update(traffic);
  traffic.reset();
  traffic.node_traffic_mut(PartitionId{1}, ServerId{0}) = 0.0;
  stats.update(traffic);
  EXPECT_DOUBLE_EQ(stats.node_traffic(PartitionId{1}, ServerId{0}),
                   0.8 * 10.0);
}

TEST(TrafficStats, MeanNodeTrafficMatchesEq17) {
  TrafficStats stats(kPartitions, kServers, kDatacenters, 0.5);
  EpochTraffic traffic = make_traffic();
  traffic.node_traffic_mut(PartitionId{2}, ServerId{0}) = 6.0;
  traffic.node_traffic_mut(PartitionId{2}, ServerId{3}) = 4.0;
  stats.update(traffic);
  // Sum 10 over 5 live servers.
  EXPECT_DOUBLE_EQ(stats.mean_node_traffic(PartitionId{2}, 5), 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_node_traffic(PartitionId{2}, 0), 0.0);
}

TEST(TrafficStats, SeriesAreIndependentPerPartitionAndServer) {
  TrafficStats stats(kPartitions, kServers, kDatacenters, 0.2);
  EpochTraffic traffic = make_traffic();
  traffic.node_traffic_mut(PartitionId{0}, ServerId{0}) = 3.0;
  stats.update(traffic);
  EXPECT_DOUBLE_EQ(stats.node_traffic(PartitionId{0}, ServerId{1}), 0.0);
  EXPECT_DOUBLE_EQ(stats.node_traffic(PartitionId{1}, ServerId{0}), 0.0);
}

TEST(TrafficStats, ConvergesToSteadyInput) {
  TrafficStats stats(kPartitions, kServers, kDatacenters, 0.2);
  EpochTraffic traffic = make_traffic();
  traffic.partition_queries_mut(PartitionId{3}) = 21.0;
  for (int i = 0; i < 50; ++i) stats.update(traffic);
  EXPECT_NEAR(stats.avg_query(PartitionId{3}), 7.0, 1e-9);
}

TEST(TrafficStats, ClearServerForgetsAllSeries) {
  TrafficStats stats(kPartitions, kServers, kDatacenters, 0.2);
  EpochTraffic traffic = make_traffic();
  traffic.node_traffic_mut(PartitionId{0}, ServerId{2}) = 12.0;
  traffic.node_traffic_mut(PartitionId{1}, ServerId{2}) = 4.0;
  traffic.node_traffic_mut(PartitionId{0}, ServerId{3}) = 6.0;
  traffic.server_work_mut(ServerId{2}) = 16.0;
  stats.update(traffic);

  stats.clear_server(ServerId{2});
  EXPECT_DOUBLE_EQ(stats.node_traffic(PartitionId{0}, ServerId{2}), 0.0);
  EXPECT_DOUBLE_EQ(stats.node_traffic(PartitionId{1}, ServerId{2}), 0.0);
  EXPECT_DOUBLE_EQ(stats.server_arrival(ServerId{2}), 0.0);
  // Other servers' series are untouched.
  EXPECT_DOUBLE_EQ(stats.node_traffic(PartitionId{0}, ServerId{3}), 6.0);
}

TEST(TrafficStats, ClearServerRebalancesEq17Mean) {
  // The dead server's tr-bar must leave the Eq. 17 numerator at the same
  // time the live count leaves its denominator — otherwise stale traffic
  // inflates the mean for many epochs after a failure.
  TrafficStats stats(kPartitions, kServers, kDatacenters, 0.2);
  EpochTraffic traffic = make_traffic();
  traffic.node_traffic_mut(PartitionId{0}, ServerId{1}) = 30.0;
  traffic.node_traffic_mut(PartitionId{0}, ServerId{4}) = 10.0;
  stats.update(traffic);
  EXPECT_DOUBLE_EQ(stats.mean_node_traffic(PartitionId{0}, kServers),
                   40.0 / kServers);

  stats.clear_server(ServerId{1});
  EXPECT_DOUBLE_EQ(stats.mean_node_traffic(PartitionId{0}, kServers - 1),
                   10.0 / (kServers - 1));
}

TEST(EpochTraffic, ResetClearsEverything) {
  EpochTraffic traffic = make_traffic();
  traffic.node_traffic_mut(PartitionId{0}, ServerId{0}) = 1.0;
  traffic.served_mut(PartitionId{0}, ServerId{0}) = 1.0;
  traffic.partition_queries_mut(PartitionId{0}) = 1.0;
  traffic.unserved_mut(PartitionId{0}) = 1.0;
  traffic.server_work_mut(ServerId{0}) = 1.0;
  traffic.add_total_queries(5.0);
  traffic.add_path_sample(2.0, 3.0);
  traffic.reset();
  EXPECT_DOUBLE_EQ(traffic.node_traffic(PartitionId{0}, ServerId{0}), 0.0);
  EXPECT_DOUBLE_EQ(traffic.served(PartitionId{0}, ServerId{0}), 0.0);
  EXPECT_DOUBLE_EQ(traffic.partition_queries(PartitionId{0}), 0.0);
  EXPECT_DOUBLE_EQ(traffic.unserved(PartitionId{0}), 0.0);
  EXPECT_DOUBLE_EQ(traffic.server_work(ServerId{0}), 0.0);
  EXPECT_DOUBLE_EQ(traffic.total_queries(), 0.0);
  EXPECT_DOUBLE_EQ(traffic.mean_path_length(), 0.0);
}

TEST(EpochTraffic, MeanPathLengthIsQueryWeighted) {
  EpochTraffic traffic = make_traffic();
  traffic.add_path_sample(3.0, 2.0);  // 3 queries at 2 hops
  traffic.add_path_sample(1.0, 6.0);  // 1 query at 6 hops
  EXPECT_DOUBLE_EQ(traffic.mean_path_length(), (3.0 * 2.0 + 6.0) / 4.0);
}

}  // namespace
}  // namespace rfh
