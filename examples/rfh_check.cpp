// rfh_check: the differential-oracle & fuzzing driver (src/check/).
//
// Modes (mutually exclusive):
//   --seeds=N            fuzz N cases from --seed-start (default 0)
//   --budget-seconds=S   fuzz from --seed-start until the wall-clock
//                        budget is spent (CI smoke mode)
//   --replay=FILE        re-run one committed case JSON
//   --replay-dir=DIR     re-run every *.json case in a directory
//
// Other flags:
//   --seed-start=N       first fuzz seed (default 0)
//   --out-dir=DIR        where to write the minimized case on divergence
//                        (default "."); the file is <name>.json with a
//                        one-line report on stdout
//   --quiet              only print the final summary / failure report
//
// Exit codes: 0 = all runs matched; 1 = divergence or invariant
// violation (minimized case written in fuzz modes); 2 = usage or I/O
// error.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "check/case.h"
#include "check/diff.h"
#include "check/fuzzer.h"
#include "check/shrink.h"

namespace {

struct Options {
  std::uint64_t seeds = 0;
  std::uint64_t seed_start = 0;
  double budget_seconds = 0.0;
  std::string replay;
  std::string replay_dir;
  std::string out_dir = ".";
  bool quiet = false;
};

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char ch : text) {
    if (ch < '0' || ch > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  out = value;
  return true;
}

bool parse_args(int argc, char** argv, Options& opt, std::string& error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> std::string {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--seeds=", 0) == 0) {
      if (!parse_u64(value("--seeds="), opt.seeds) || opt.seeds == 0) {
        error = "--seeds wants a positive integer: " + arg;
        return false;
      }
    } else if (arg.rfind("--seed-start=", 0) == 0) {
      if (!parse_u64(value("--seed-start="), opt.seed_start)) {
        error = "--seed-start wants a non-negative integer: " + arg;
        return false;
      }
    } else if (arg.rfind("--budget-seconds=", 0) == 0) {
      std::uint64_t seconds = 0;
      if (!parse_u64(value("--budget-seconds="), seconds) || seconds == 0) {
        error = "--budget-seconds wants a positive integer: " + arg;
        return false;
      }
      opt.budget_seconds = static_cast<double>(seconds);
    } else if (arg.rfind("--replay=", 0) == 0) {
      opt.replay = value("--replay=");
    } else if (arg.rfind("--replay-dir=", 0) == 0) {
      opt.replay_dir = value("--replay-dir=");
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      opt.out_dir = value("--out-dir=");
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else {
      error = "unknown flag: " + arg;
      return false;
    }
  }
  const int modes = (opt.seeds > 0 ? 1 : 0) +
                    (opt.budget_seconds > 0.0 ? 1 : 0) +
                    (opt.replay.empty() ? 0 : 1) +
                    (opt.replay_dir.empty() ? 0 : 1);
  if (modes != 1) {
    error =
        "pick exactly one mode: --seeds=N, --budget-seconds=S, "
        "--replay=FILE or --replay-dir=DIR";
    return false;
  }
  return true;
}

int replay_one(const std::string& path, bool quiet) {
  const rfh::CheckCase::ParseResult parsed = rfh::CheckCase::load(path);
  if (!parsed.ok) {
    std::fprintf(stderr, "rfh_check: %s: %s\n", path.c_str(),
                 parsed.error.c_str());
    return 2;
  }
  const rfh::DiffOutcome outcome = rfh::run_check_case(parsed.value);
  if (!outcome.ok) {
    std::printf("FAIL %s: %s\n", path.c_str(), outcome.to_string().c_str());
    return 1;
  }
  if (!quiet) {
    std::printf("ok   %s: %s\n", path.c_str(), outcome.to_string().c_str());
  }
  return 0;
}

int replay_dir(const std::string& dir, bool quiet) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "rfh_check: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 2;
  }
  if (files.empty()) {
    std::fprintf(stderr, "rfh_check: no *.json cases in %s\n", dir.c_str());
    return 2;
  }
  std::sort(files.begin(), files.end());
  int worst = 0;
  for (const std::string& file : files) {
    worst = std::max(worst, replay_one(file, quiet));
  }
  if (worst == 0 && !quiet) {
    std::printf("rfh_check: %zu corpus cases green\n", files.size());
  }
  return worst;
}

/// Shrink the diverging case and write it under out_dir. Returns the
/// written path (empty when the write failed).
std::string minimize_and_save(const rfh::CheckCase& failing,
                              const Options& opt) {
  // Truncating the horizon to just past the first divergence makes every
  // shrink probe cheap.
  rfh::CheckCase seed_case = failing;
  const rfh::DiffOutcome first = rfh::run_check_case(seed_case);
  if (!first.ok && !first.invariant_failure) {
    seed_case.epochs = std::min(seed_case.epochs, first.epoch + 1);
  }
  const rfh::ShrinkResult shrunk = rfh::shrink_case(
      seed_case,
      [](const rfh::CheckCase& c) { return !rfh::run_check_case(c).ok; });

  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  const std::string path = opt.out_dir + "/case_seed_" +
                           std::to_string(failing.seed) + ".json";
  if (!shrunk.smallest.save(path)) {
    std::fprintf(stderr, "rfh_check: failed to write %s\n", path.c_str());
    return {};
  }
  return path;
}

int fuzz(const Options& opt) {
  const auto start = std::chrono::steady_clock::now();
  const auto budget_spent = [&] {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= opt.budget_seconds;
  };

  std::uint64_t ran = 0;
  for (std::uint64_t seed = opt.seed_start;; ++seed) {
    if (opt.seeds > 0 && ran >= opt.seeds) break;
    if (opt.budget_seconds > 0.0 && ran > 0 && budget_spent()) break;

    const rfh::CheckCase c = rfh::make_fuzz_case(seed);
    const rfh::DiffOutcome outcome = rfh::run_check_case(c);
    ++ran;
    if (outcome.ok) {
      if (!opt.quiet) {
        std::printf("ok   seed=%llu: %s\n",
                    static_cast<unsigned long long>(seed),
                    outcome.to_string().c_str());
      }
      continue;
    }
    std::printf("FAIL seed=%llu: %s\n", static_cast<unsigned long long>(seed),
                outcome.to_string().c_str());
    const std::string path = minimize_and_save(c, opt);
    if (!path.empty()) {
      std::printf("minimized case written to %s\n", path.c_str());
    }
    return 1;
  }
  std::printf("rfh_check: %llu seeds divergence-free\n",
              static_cast<unsigned long long>(ran));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string error;
  if (!parse_args(argc, argv, opt, error)) {
    std::fprintf(stderr, "rfh_check: %s\n", error.c_str());
    std::fprintf(stderr,
                 "usage: rfh_check (--seeds=N | --budget-seconds=S | "
                 "--replay=FILE | --replay-dir=DIR) [--seed-start=N] "
                 "[--out-dir=DIR] [--quiet]\n");
    return 2;
  }
  if (!opt.replay.empty()) return replay_one(opt.replay, opt.quiet);
  if (!opt.replay_dir.empty()) return replay_dir(opt.replay_dir, opt.quiet);
  return fuzz(opt);
}
