// Robustness under combined and extreme regimes: simultaneous server,
// datacenter and link failures; degenerate world shapes; storage and
// vnode-cap pressure; long-run stability.
#include <gtest/gtest.h>

#include <memory>

#include "common/log.h"
#include "core/rfh_policy.h"
#include "fault/invariants.h"
#include "harness/runner.h"
#include "test_util.h"

namespace rfh {
namespace {

TEST(Robustness, CombinedServerLinkAndDatacenterFailures) {
  SimConfig config;
  config.partitions = 16;
  WorkloadParams params;
  params.partitions = 16;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  sim->run(40);

  // Pile on: a link failure, a datacenter disaster, and random server
  // deaths, interleaved with stepping.
  sim->fail_link(sim->world().by_letter('I'), sim->world().by_letter('D'));
  sim->run(10);
  sim->fail_datacenter(sim->world().by_letter('C'));
  sim->run(10);
  sim->fail_random_servers(10);
  sim->run(40);
  sim->cluster().check_invariants();

  // Then heal everything and confirm the system re-absorbs it.
  std::vector<ServerId> dead;
  for (const Server& s : sim->topology().servers()) {
    if (!sim->cluster().alive(s.id)) dead.push_back(s.id);
  }
  sim->recover_servers(dead);
  sim->restore_link(sim->world().by_letter('I'), sim->world().by_letter('D'));
  sim->run(40);
  sim->cluster().check_invariants();
  EXPECT_EQ(sim->cluster().live_server_count(), 100u);
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    EXPECT_GE(sim->cluster().replica_count(PartitionId{p}), 2u);
  }
}

TEST(Robustness, SingleDatacenterWorldStillWorks) {
  // All routing degenerates to local stages; RFH must fall back to
  // same-datacenter relief.
  World world = build_synthetic_world(1, test::uniform_world_options());
  SimConfig config;
  config.partitions = 4;
  WorkloadParams params;
  params.partitions = 4;
  params.datacenters = 1;
  params.mean_queries_per_epoch = 40.0;
  auto sim = std::make_unique<Simulation>(
      std::move(world), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 40; ++e) sim->step();
  sim->cluster().check_invariants();
  // Demand 40/epoch against 10 servers x capacity 2: the single
  // datacenter saturates, but copies must have grown to absorb it.
  EXPECT_GT(sim->cluster().total_replicas(), 8u);
}

TEST(Robustness, StoragePressureBindsAndIsRespected) {
  // Disks sized for ~2 copies under the 70% rule: the cluster must stay
  // within the limit everywhere and keep running (with dropped actions).
  SimConfig config;
  config.partitions = 32;
  WorldOptions options = test::uniform_world_options(
      /*capacity=*/2.0, /*channels=*/4,
      /*storage=*/Bytes{3} * SimConfig{}.partition_size);
  WorkloadParams params;
  params.partitions = 32;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(options), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 60; ++e) sim->step();
  for (const Server& s : sim->topology().servers()) {
    EXPECT_LE(sim->cluster().copies_on(s.id), 2u) << "phi limit violated";
  }
  sim->cluster().check_invariants();
}

TEST(Robustness, VnodeCapBindsAndIsRespected) {
  SimConfig config;
  config.partitions = 64;
  WorldOptions options = test::uniform_world_options();
  options.max_vnodes = 1;  // one copy per server, cluster-wide cap 100
  WorkloadParams params;
  params.partitions = 64;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(options), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 60; ++e) sim->step();
  EXPECT_LE(sim->cluster().total_replicas(), 100u);
  for (const Server& s : sim->topology().servers()) {
    EXPECT_LE(sim->cluster().copies_on(s.id), 1u);
  }
}

TEST(Robustness, LongRunStaysBoundedAndInvariant) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 400;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh);
  // Census bounded between floor and cap for the whole tail.
  for (std::size_t e = 50; e < run.series.size(); ++e) {
    EXPECT_GE(run.series[e].avg_replicas_per_partition, 1.9);
    EXPECT_LE(run.series[e].avg_replicas_per_partition, 16.0);
  }
  // No runaway cumulative churn: the last 100 epochs replicate at a far
  // lower rate than the first 100 (build-out vs steady state).
  const double early = run.series[99].replication_cost_total;
  const double late = run.series.back().replication_cost_total -
                      run.series[run.series.size() - 100].replication_cost_total;
  EXPECT_LT(late, early);
}

TEST(Robustness, ManyPartitionsFewServers) {
  // 256 partitions on the 100-server world: several vnodes per server.
  SimConfig config;
  config.partitions = 256;
  WorkloadParams params;
  params.partitions = 256;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 30; ++e) sim->step();
  sim->cluster().check_invariants();
  EXPECT_GE(sim->cluster().total_replicas(), 256u);
}

TEST(Robustness, ZeroDemandIsAValidSteadyState) {
  // No queries at all: the floor is established and nothing else happens.
  SimConfig config;
  config.partitions = 8;
  auto sim = test::make_fixed_sim({}, std::make_unique<RfhPolicy>(), config);
  for (int e = 0; e < 30; ++e) sim->step();
  const std::uint32_t after_floor = sim->cluster().total_replicas();
  std::uint32_t actions = 0;
  for (int e = 0; e < 30; ++e) {
    const EpochReport r = sim->step();
    actions += r.replications + r.migrations + r.suicides;
  }
  EXPECT_EQ(actions, 0u);
  EXPECT_EQ(sim->cluster().total_replicas(), after_floor);
}

TEST(Robustness, ErasureInvariantsHoldUnderCombinedFailures) {
  // ec(4,2) on the paper world under server + datacenter failures: the
  // fragment-census and zone-diversity invariants must hold every epoch,
  // and lost stripes must be re-detected rather than silently served.
  SimConfig config;
  config.redundancy = RedundancyMode::kErasure;
  config.ec_k = 4;
  config.ec_m = 2;
  config.partitions = 16;
  WorkloadParams params;
  params.partitions = 16;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(test::uniform_world_options()), config,
      std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const auto step_checked = [&](int epochs) {
    for (int e = 0; e < epochs; ++e) {
      const EpochReport r = sim->step();
      checker.check_epoch(*sim, r);
    }
  };
  step_checked(30);
  sim->fail_random_servers(10);
  step_checked(10);
  sim->fail_datacenter(sim->world().by_letter('C'));
  step_checked(20);
  for (const auto& v : checker.violations()) {
    ADD_FAILURE() << "epoch " << v.epoch << " " << invariant_name(v.id)
                  << ": " << v.detail;
  }
  // Zone diversity by construction: no datacenter ever hosts more than m
  // fragments of a stripe, so losing dc C alone cannot drop below k.
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    EXPECT_FALSE(sim->stripe_lost(PartitionId{p})) << "partition " << p;
  }
}

TEST(Robustness, DefaultVnodeCapStarvesFloorRepairsAtScale) {
  // Regression for the silent repair starvation the fixed default vnode
  // cap causes at scale: a 100-datacenter x 100-server synthetic world
  // (10k servers) carrying 800 partitions. Availability-floor repairs
  // funnel through the same lowest-id feasible targets (first-fit /
  // tied Erlang-B), so one decide pass proposes more copies at a server
  // than its 16-vnode default cap has room for, and the overflow is
  // dropped — previously indistinguishable from any other kNodeCap drop.
  // With WorldOptions::partitions_hint the cap is exactly never-binding
  // and every starved repair disappears.
  const auto starved_repairs = [](bool with_hint) {
    SimConfig config;
    config.partitions = 800;
    config.min_availability = 0.9995;  // floor of 4 fragments at f=0.1
    config.beta = 1e9;                 // overload rules never fire:
    config.gamma = 1e9;                // floor repairs are the only action
    WorldOptions options = test::uniform_world_options();
    options.rooms_per_datacenter = 2;
    options.racks_per_room = 5;
    options.servers_per_rack = 10;
    if (with_hint) options.partitions_hint = config.partitions;
    WorkloadParams params;
    params.partitions = config.partitions;
    params.datacenters = 100;
    params.mean_queries_per_epoch = 1.0;
    auto sim = std::make_unique<Simulation>(
        build_synthetic_world(100, options), config,
        std::make_unique<UniformWorkload>(params),
        std::make_unique<RfhPolicy>());
    std::uint64_t starved = 0;
    for (int e = 0; e < 10; ++e) starved += sim->step().repairs_starved;
    // Rolling churn keeps a repair backlog alive past the bootstrap.
    for (int wave = 0; wave < 10; ++wave) {
      sim->fail_random_servers(200);
      starved += sim->step().repairs_starved;
      std::vector<ServerId> dead;
      for (const Server& s : sim->topology().servers()) {
        if (!sim->cluster().alive(s.id)) dead.push_back(s.id);
      }
      sim->recover_servers(dead);
      starved += sim->step().repairs_starved;
    }
    return starved;
  };
  EXPECT_GT(starved_repairs(/*with_hint=*/false), 0u);
  EXPECT_EQ(starved_repairs(/*with_hint=*/true), 0u);
}

TEST(Logging, LevelFilterWorks) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log(LogLevel::kDebug, "should be suppressed %d", 1);  // must not crash
  log(LogLevel::kError, "visible %s", "message");
  set_log_level(before);
}

}  // namespace
}  // namespace rfh
