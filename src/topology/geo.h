// Geographic primitives: continents, coordinates, great-circle distance.
//
// The paper's replication cost (Eq. 1) and availability levels depend on
// where servers physically sit; datacenters carry a latitude/longitude so
// inter-datacenter distance d_i is a real kilometre figure rather than an
// arbitrary constant.
#pragma once

#include <string>
#include <string_view>

namespace rfh {

enum class Continent {
  kNorthAmerica,
  kSouthAmerica,
  kEurope,
  kAsia,
  kAfrica,
  kOceania,
};

/// Two-letter code used in node labels ("NA", "EU", "AS", ...).
std::string_view continent_code(Continent c) noexcept;

/// Parse a two-letter continent code; aborts on unknown input.
Continent parse_continent(std::string_view code);

struct GeoPoint {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
double great_circle_km(const GeoPoint& a, const GeoPoint& b) noexcept;

}  // namespace rfh
