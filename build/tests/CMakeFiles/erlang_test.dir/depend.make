# Empty dependencies file for erlang_test.
# This may be replaced when dependencies are built.
