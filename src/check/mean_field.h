// Mean-field analytic oracle for the replica-census distribution.
//
// The differential oracle (diff.h) replays the engine bit-for-bit against
// a naive reference, which is only affordable at small N. This module
// validates the *large*-N regime the other way: Sun et al.'s mean-field
// analysis of replication under failure/repair (arXiv 1701.00335) says
// that as the fleet grows, the empirical distribution of per-partition
// copy counts converges to the stationary distribution of a single-
// partition Markov chain in which every other partition is summarized by
// its average effect. We build that chain from the scenario's failure
// and repair parameters, solve for its fixed point, and compare the
// engine's measured census against it; the sim-vs-analytic error must
// *shrink* as N grows (rfh_check --mode=meanfield asserts monotonicity
// across 1k/10k/100k servers).
//
// The chain (one epoch, one partition, k = copies in 0..max_replicas):
//   1. deaths  j ~ Binomial(k, death_prob): chaos kills a fixed fraction
//      of the fleet each epoch, and a partition's k holders are a
//      uniformly random k-subset of it. (The engine's draw is
//      hypergeometric — without replacement from n servers — whose
//      O(1/N) deviation from the binomial is exactly the finite-size
//      error that vanishes as N grows.)
//   2. reseed  s = k - j; s == 0 becomes s = 1: the engine reseeds a
//      partition that lost every copy at its ring successor (data loss),
//      in the same pre-step failure handling.
//   3. repair  s < r_target gains one copy with probability repair_prob:
//      RFH's Eq. 14 availability floor proposes exactly one replicate
//      per deficient partition per epoch, and the kNearOwner fallback
//      makes placement succeed unless bandwidth/storage run dry
//      (repair_prob models that success rate; 1.0 in a provisioned
//      fleet).
//
// Where this is and isn't a valid oracle: the model assumes kills are
// uniform and independent of placement (true for churn/crash plans, not
// for zone or DC outages), ignores the overload/migration/suicide rules
// (the meanfield scenario disables them / sets their thresholds out of
// reach), and treats partitions as exchangeable. See DESIGN.md §16.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"

namespace rfh {

struct Scenario;

/// Inputs of the census chain. Derive from a scenario with
/// from_scenario(), or fill directly (tests, ablations).
struct MeanFieldParams {
  /// Per-server, per-epoch kill probability (the chaos plan's steady
  /// kill fraction).
  double death_prob = 0.0;
  /// Probability a below-floor partition successfully gains its +1 copy
  /// in an epoch (Eq. 14 repair; 1.0 unless bandwidth/storage starve).
  double repair_prob = 1.0;
  /// Eq. 14 availability floor r_min the repair rule restores toward.
  std::uint32_t r_target = 2;
  /// Census support cap (states 0..max_replicas inclusive).
  std::uint32_t max_replicas = 16;
  /// Per-copy failure probability f (availability(r, f) = 1 - f^r).
  double failure_rate = 0.1;
  /// Fixed-point stopping rule: iterate until the total-variation step
  /// falls below `tolerance` (or `max_iterations` epochs of the chain).
  double tolerance = 1e-13;
  std::uint32_t max_iterations = 100000;

  /// Derive the chain from a scenario: r_target via Eq. 14 from the
  /// scenario's min_availability/failure_rate, death_prob as the fault
  /// plan's expected kills per epoch (crash + churn events, averaged
  /// over [0, scenario.epochs)) divided by `n_servers`. Zone/DC outages
  /// are deliberately ignored — they violate the uniform-kill assumption
  /// (see header comment), so scenarios carrying them are not valid
  /// mean-field subjects.
  static MeanFieldParams from_scenario(const Scenario& scenario,
                                       std::size_t n_servers);
};

/// The solved fixed point.
struct MeanFieldPrediction {
  /// Stationary distribution pi_k over k = 0..max_replicas (sums to 1).
  std::vector<double> census;
  /// Sum over k of pi_k * availability(k, failure_rate)   (Eq. 14 form).
  double expected_availability = 0.0;
  /// Sum over k of pi_k * k.
  double expected_replicas = 0.0;
  /// Fixed-point iterations performed.
  std::uint32_t iterations = 0;
  /// False when max_iterations elapsed before the tolerance was met.
  bool converged = false;
};

/// Solve the census chain for its stationary distribution by fixed-point
/// iteration from delta at min(r_target, max_replicas).
[[nodiscard]] MeanFieldPrediction predict_census(const MeanFieldParams& params);

/// Convenience: from_scenario + predict_census.
[[nodiscard]] MeanFieldPrediction predict_census(const Scenario& scenario,
                                                 std::size_t n_servers);

/// One step of the chain: census' = census * T. Exposed for tests (a
/// stationary distribution must be a fixed point of this map).
void mean_field_step(const MeanFieldParams& params,
                     std::span<const double> census,
                     std::vector<double>& out);

/// Sim-vs-analytic comparison. `sim_census` is the engine's measured
/// copy-count histogram over k = 0..prediction.census.size()-1 (raw
/// counts or any normalization — it is normalized internally; a shorter
/// span is zero-extended).
struct CensusComparison {
  /// 0.5 * sum |sim_k - pi_k| in [0, 1] — the headline error.
  double total_variation = 0.0;
  /// Signed per-bin error sim_k - pi_k.
  std::vector<double> per_bin_error;
  /// max_k |sim_k - pi_k|.
  double max_bin_error = 0.0;
  double sim_expected_replicas = 0.0;
  double predicted_expected_replicas = 0.0;
  double sim_expected_availability = 0.0;
  double predicted_expected_availability = 0.0;
};

[[nodiscard]] CensusComparison compare(std::span<const double> sim_census,
                                       const MeanFieldPrediction& prediction,
                                       double failure_rate);

}  // namespace rfh
