// Microbenchmark — ring lookup hot path, flat array vs the seed's
// std::map walk.
//
// The ring refactor (src/ring/ring.h) replaced a std::map<position,
// owner> with a sorted flat array + binary search, and added lazily
// built per-token successor lists so preference_list is a slice copy
// instead of a fresh clockwise dedup walk. This bench keeps the old
// implementation alive as an inline reference (same token hashing, same
// collision probe, so both structures hold identical tokens) and
// measures both on identical key streams:
//
//   * primary(key)            — one successor lookup;
//   * preference_list(key, 3) — a short Dynamo preference list;
//   * preference_list(key, S) — the full distinct-successor walk, which
//     is what the engine actually asks for (seed_primaries and lost-copy
//     reseeding pass live_server_count(), and RandomPolicy walks r+4):
//     the seed pays a fresh O(tokens) dedup walk per call, the flat ring
//     serves a slice of the per-token successor cache.
//
// Reported ns/op are medians of kReps timed repetitions. The acceptance
// gate for the refactor is lookup_speedup >= 3 on the preference-list
// path (the dominant lookup in the simulation loop).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <random>
#include <vector>

#include "bench_args.h"
#include "bench_report.h"
#include "ring/hash.h"
#include "ring/ring.h"

namespace {

/// The seed implementation: token positions in a std::map, every
/// preference_list a fresh clockwise dedup walk over map iterators.
class MapRing {
 public:
  explicit MapRing(std::uint32_t tokens_per_server)
      : tokens_per_server_(tokens_per_server) {}

  void add_server(rfh::ServerId server) {
    for (std::uint32_t i = 0; i < tokens_per_server_; ++i) {
      std::uint64_t pos =
          rfh::hash_combine(rfh::hash64(std::uint64_t{server.value()}),
                            rfh::hash64(std::uint64_t{i}));
      while (ring_.contains(pos)) ++pos;  // same probe as HashRing
      ring_.emplace(pos, server);
    }
    ++servers_;
  }

  [[nodiscard]] rfh::ServerId primary(std::uint64_t key) const {
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

  [[nodiscard]] std::vector<rfh::ServerId> preference_list(
      std::uint64_t key, std::size_t n) const {
    std::vector<rfh::ServerId> out;
    out.reserve(n);
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();
    for (std::size_t step = 0; step < ring_.size() && out.size() < n &&
                               out.size() < servers_;
         ++step) {
      if (std::find(out.begin(), out.end(), it->second) == out.end()) {
        out.push_back(it->second);
      }
      ++it;
      if (it == ring_.end()) it = ring_.begin();
    }
    return out;
  }

 private:
  std::uint32_t tokens_per_server_;
  std::map<std::uint64_t, rfh::ServerId> ring_;
  std::size_t servers_ = 0;
};

constexpr std::size_t kKeys = 1 << 13;
/// The full-walk op costs O(tokens) per call on the map reference, so it
/// gets a smaller key set to keep the bench fast.
constexpr std::size_t kWalkKeys = 1 << 9;
constexpr int kReps = 9;

/// Median over kReps of the per-op nanosecond cost of `fn` applied to
/// every key. `fn` returns a value folded into a checksum so the work
/// cannot be optimized away.
template <typename F>
double measure_ns_per_op(const std::vector<std::uint64_t>& keys, F&& fn,
                         std::uint64_t& checksum) {
  std::vector<double> samples;
  samples.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (const std::uint64_t key : keys) {
      checksum += fn(key);
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    samples.push_back(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()) /
        static_cast<double>(keys.size()));
  }
  std::nth_element(samples.begin(), samples.begin() + kReps / 2,
                   samples.end());
  return samples[kReps / 2];
}

}  // namespace

int main(int argc, char** argv) {
  // Single-thread microbenchmark: --jobs is accepted for the uniform
  // bench interface but timing stays serial.
  (void)rfh::bench_jobs(argc, argv);
  rfh::BenchReport report("micro_ring");
  std::printf("# Ring lookup hot path: flat sorted array (+ successor "
              "cache) vs std::map walk\n");
  std::printf("%8s %22s %12s %12s %9s\n", "servers", "op", "map ns/op",
              "flat ns/op", "speedup");

  for (const std::uint32_t servers : {100u, 1000u}) {
    constexpr std::uint32_t kTokens = 16;
    rfh::HashRing flat(kTokens);
    MapRing map(kTokens);
    for (std::uint32_t s = 1; s <= servers; ++s) {
      flat.add_server(rfh::ServerId{s});
      map.add_server(rfh::ServerId{s});
    }

    std::mt19937_64 rng(0x52464Bu /* "RFK" */ + servers);
    std::vector<std::uint64_t> keys(kKeys);
    for (std::uint64_t& key : keys) key = rng();

    // Both structures must agree before timing means anything.
    for (const std::uint64_t key : keys) {
      if (flat.primary(key) != map.primary(key)) {
        std::fprintf(stderr, "bench_micro_ring: owner mismatch at key %llu\n",
                     static_cast<unsigned long long>(key));
        return 1;
      }
    }

    std::uint64_t checksum = 0;
    double map_primary = 0.0;
    double flat_primary = 0.0;
    double map_pref3 = 0.0;
    double flat_pref3 = 0.0;
    double map_walk = 0.0;
    double flat_walk = 0.0;
    {
      const auto stage =
          report.stage("measure_" + std::to_string(servers) + "_servers");
      map_primary = measure_ns_per_op(
          keys, [&](std::uint64_t k) { return map.primary(k).value(); },
          checksum);
      flat_primary = measure_ns_per_op(
          keys, [&](std::uint64_t k) { return flat.primary(k).value(); },
          checksum);
      map_pref3 = measure_ns_per_op(
          keys,
          [&](std::uint64_t k) { return map.preference_list(k, 3)[0].value(); },
          checksum);
      flat_pref3 = measure_ns_per_op(
          keys,
          [&](std::uint64_t k) {
            return flat.preference_list(k, 3)[0].value();
          },
          checksum);
      const std::vector<std::uint64_t> walk_keys(keys.begin(),
                                                 keys.begin() + kWalkKeys);
      map_walk = measure_ns_per_op(
          walk_keys,
          [&](std::uint64_t k) {
            return map.preference_list(k, servers).back().value();
          },
          checksum);
      flat_walk = measure_ns_per_op(
          walk_keys,
          [&](std::uint64_t k) {
            return flat.preference_list(k, servers).back().value();
          },
          checksum);
    }
    if (checksum == 0) std::printf("# impossible checksum\n");

    const double primary_speedup = map_primary / flat_primary;
    const double pref3_speedup = map_pref3 / flat_pref3;
    const double walk_speedup = map_walk / flat_walk;
    std::printf("%8u %22s %12.1f %12.1f %8.2fx\n", servers, "primary",
                map_primary, flat_primary, primary_speedup);
    std::printf("%8u %22s %12.1f %12.1f %8.2fx\n", servers,
                "preference_list(3)", map_pref3, flat_pref3, pref3_speedup);
    std::printf("%8u %22s %12.1f %12.1f %8.2fx\n", servers,
                "preference_list(all)", map_walk, flat_walk, walk_speedup);

    const std::string suffix = "_" + std::to_string(servers);
    report.add_metric("map_primary_ns" + suffix, map_primary);
    report.add_metric("flat_primary_ns" + suffix, flat_primary);
    report.add_metric("primary_speedup" + suffix, primary_speedup);
    report.add_metric("map_pref3_ns" + suffix, map_pref3);
    report.add_metric("flat_pref3_ns" + suffix, flat_pref3);
    report.add_metric("pref3_speedup" + suffix, pref3_speedup);
    report.add_metric("map_full_walk_ns" + suffix, map_walk);
    report.add_metric("flat_full_walk_ns" + suffix, flat_walk);
    report.add_metric("full_walk_speedup" + suffix, walk_speedup);
    // Headline acceptance metric: the full-walk preference list at the
    // paper's world size (100 servers) — the lookup seed_primaries,
    // lost-copy reseeding and RandomPolicy hammer every epoch.
    if (servers == 100u) {
      report.add_metric("lookup_speedup", walk_speedup);
    }
  }
  report.write_file();
  return 0;
}
