// Event-emission overhead (google-benchmark): guards the observability
// subsystem's zero-cost-when-disabled claim.
//
//  * BM_SimStep/{off,counter,jsonl,recorder}: a full Simulation::step with
//    no sink, an aggregating CounterSink, a JSONL sink writing to a
//    discarded stream, and the causal flight recorder (TimelineStore).
//    The "off" and "counter" variants must be within noise of each other;
//    acceptance requires instrumentation overhead < 1% when no sink is
//    installed and <= 5% with the recorder attached.
//  * BM_EmitDisabled / BM_EmitRingBuffer / BM_EmitTimelineStore: the raw
//    cost of one emit() through an empty bus (the disabled path is a
//    single sinks-empty branch), a ring sink, and the flight recorder's
//    condense-and-index path.
//
// scripts/obs_overhead.py consumes this bench's --benchmark_format=json
// output and fails CI when the recorder/disabled overhead *ratio*
// regresses >25% against bench/results/obs_overhead_baseline.json.
#include <benchmark/benchmark.h>

#include <sstream>

#include "harness/scenario.h"
#include "obs/sinks.h"
#include "obs/timeline.h"
#include "sim/engine.h"

namespace {

enum class SinkMode { kOff, kCounter, kJsonl, kRecorder };

void run_sim_steps(benchmark::State& state, SinkMode mode) {
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  auto sim = rfh::make_simulation(scenario, rfh::PolicyKind::kRfh);

  rfh::CounterSink counters;
  std::ostringstream discard;
  rfh::JsonlSink jsonl(discard);
  rfh::TimelineStore recorder(scenario.sim.partitions);
  if (mode == SinkMode::kCounter) sim->events().add_sink(&counters);
  if (mode == SinkMode::kJsonl) sim->events().add_sink(&jsonl);
  if (mode == SinkMode::kRecorder) sim->events().add_sink(&recorder);

  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->step());
    if (discard.tellp() > (1 << 22)) {
      discard.str({});  // keep the discard buffer from growing unboundedly
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SimStep_TracingOff(benchmark::State& state) {
  run_sim_steps(state, SinkMode::kOff);
}
BENCHMARK(BM_SimStep_TracingOff)->Unit(benchmark::kMicrosecond);

void BM_SimStep_CounterSink(benchmark::State& state) {
  run_sim_steps(state, SinkMode::kCounter);
}
BENCHMARK(BM_SimStep_CounterSink)->Unit(benchmark::kMicrosecond);

void BM_SimStep_JsonlSink(benchmark::State& state) {
  run_sim_steps(state, SinkMode::kJsonl);
}
BENCHMARK(BM_SimStep_JsonlSink)->Unit(benchmark::kMicrosecond);

void BM_SimStep_Recorder(benchmark::State& state) {
  run_sim_steps(state, SinkMode::kRecorder);
}
BENCHMARK(BM_SimStep_Recorder)->Unit(benchmark::kMicrosecond);

// The fully-disabled path: no sink installed, so emit() must reduce to
// the single sinks-empty pointer test. scripts/obs_overhead.py ratios
// every other emit variant against this one.
void BM_EmitDisabled(benchmark::State& state) {
  rfh::EventBus bus;
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    bus.emit(rfh::ServerFailed{epoch++, rfh::ServerId{3}});
    benchmark::DoNotOptimize(bus);
  }
}
BENCHMARK(BM_EmitDisabled);

void BM_EmitRingBuffer(benchmark::State& state) {
  rfh::EventBus bus;
  rfh::RingBufferSink ring(1024);
  bus.add_sink(&ring);
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    bus.emit(rfh::ServerFailed{epoch++, rfh::ServerId{3}});
    benchmark::DoNotOptimize(bus);
  }
}
BENCHMARK(BM_EmitRingBuffer);

// One emit() into the flight recorder: condense to a 64-byte record,
// append to the partition ring, maintain the indexes, maybe feed the
// eviction reservoir.
void BM_EmitTimelineStore(benchmark::State& state) {
  rfh::EventBus bus;
  rfh::TimelineStore recorder(/*partitions=*/64);
  bus.add_sink(&recorder);
  std::uint32_t epoch = 0;
  rfh::ReplicaAdded event{0, rfh::PartitionId{5}, rfh::ServerId{1},
                          rfh::ServerId{9}, 3.25, {}};
  event.why.rule = rfh::DecisionRule::kOverloadHub;
  for (auto _ : state) {
    event.epoch = epoch++;
    bus.emit(event);
    benchmark::DoNotOptimize(bus);
  }
}
BENCHMARK(BM_EmitTimelineStore);

void BM_EventToJson(benchmark::State& state) {
  rfh::ReplicaAdded event{12, rfh::PartitionId{5}, rfh::ServerId{1},
                          rfh::ServerId{9}, 3.25, {}};
  event.why.rule = rfh::DecisionRule::kOverloadHub;
  const rfh::Event variant(event);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfh::event_to_json(variant));
  }
}
BENCHMARK(BM_EventToJson);

}  // namespace
