// Geographic node labels and availability levels (paper Section II-A).
//
// Every physical server carries a label of the form
//   continent-country-datacenter-room-rack-server
// e.g. "NA-USA-GA1-C01-R02-S5". Availability level between two servers is
// determined by the most specific label component they share:
//
//   Level 5  different datacenters           (highest diversity)
//   Level 4  same datacenter, different rooms
//   Level 3  same room, different racks
//   Level 2  same rack, different servers
//   Level 1  same server                     (no diversity)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rfh {

struct NodeLabel {
  std::string continent;   // "NA"
  std::string country;     // "USA"
  std::string datacenter;  // "GA1"
  std::string room;        // "C01"
  std::string rack;        // "R02"
  std::string server;      // "S5"

  /// "NA-USA-GA1-C01-R02-S5"
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const NodeLabel&, const NodeLabel&) = default;
};

/// Parse "NA-USA-GA1-C01-R02-S5"; aborts on malformed input (labels are
/// generated internally; a malformed one is a programming error).
NodeLabel parse_label(std::string_view text);

/// Availability level (1..5) between two servers per the table above.
std::uint32_t availability_level(const NodeLabel& a, const NodeLabel& b) noexcept;

}  // namespace rfh
