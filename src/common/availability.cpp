#include "common/availability.h"

#include <cmath>

#include "common/assert.h"

namespace rfh {

double availability(std::uint32_t replicas, double failure_prob) noexcept {
  RFH_ASSERT(failure_prob >= 0.0 && failure_prob <= 1.0);
  if (replicas == 0) return 0.0;
  return 1.0 - std::pow(failure_prob, static_cast<double>(replicas));
}

double availability_eq14_literal(std::uint32_t replicas,
                                 double failure_prob) noexcept {
  RFH_ASSERT(failure_prob >= 0.0 && failure_prob <= 1.0);
  // 1 - sum_{j>=1} (-1)^{j+1} C(r,j) f^j = sum_{j>=0} C(r,j) (-f)^j
  //                                      = (1 - f)^r.
  return std::pow(1.0 - failure_prob, static_cast<double>(replicas));
}

std::uint32_t min_replicas(double target, double failure_prob,
                           std::uint32_t floor_copies) noexcept {
  RFH_ASSERT(target >= 0.0 && target < 1.0);
  RFH_ASSERT(failure_prob >= 0.0 && failure_prob < 1.0);
  std::uint32_t r = floor_copies > 0 ? floor_copies : 1;
  while (availability(r, failure_prob) < target) {
    ++r;
    RFH_ASSERT_MSG(r < 1u << 16, "min_replicas diverged");
  }
  return r;
}

}  // namespace rfh
