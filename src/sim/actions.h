// Replica-management actions a policy may issue each epoch.
//
// The engine validates and applies them under the physical constraints
// (liveness, the phi storage limit, virtual-node caps, per-server
// replication/migration bandwidth budgets) and accounts their cost per
// Eq. 1. An action that fails validation is dropped for this epoch; the
// policy re-evaluates next epoch with fresh state.
#pragma once

#include <vector>

#include "common/ids.h"

namespace rfh {

struct ReplicateAction {
  PartitionId partition;
  ServerId target;
};

struct MigrateAction {
  PartitionId partition;
  ServerId from;
  ServerId to;
};

struct SuicideAction {
  PartitionId partition;
  ServerId server;
};

struct Actions {
  std::vector<ReplicateAction> replications;
  std::vector<MigrateAction> migrations;
  std::vector<SuicideAction> suicides;

  [[nodiscard]] bool empty() const noexcept {
    return replications.empty() && migrations.empty() && suicides.empty();
  }
  void clear() noexcept {
    replications.clear();
    migrations.clear();
    suicides.clear();
  }
};

}  // namespace rfh
