#include "sim/stats.h"

#include "common/assert.h"

namespace rfh {

TrafficStats::TrafficStats(std::size_t partitions, std::size_t servers,
                           std::size_t datacenters, double alpha,
                           bool alpha_weights_history)
    : partitions_(partitions),
      servers_(servers),
      datacenters_(datacenters),
      alpha_(alpha_weights_history ? alpha : 1.0 - alpha),
      avg_query_(partitions, 0.0),
      node_traffic_(partitions * servers, 0.0),
      node_traffic_sum_(partitions, 0.0),
      requester_queries_(partitions * datacenters, 0.0),
      server_arrival_(servers, 0.0) {
  RFH_ASSERT(alpha > 0.0 && alpha < 1.0);
}

void TrafficStats::update(const EpochTraffic& traffic) {
  RFH_ASSERT(traffic.partitions() == partitions_);
  RFH_ASSERT(traffic.servers() == servers_);
  RFH_ASSERT(traffic.datacenters() == datacenters_);

  // The first epoch initializes the averages directly (no zero bias),
  // matching Ewma semantics.
  const double a = initialized_ ? alpha_ : 0.0;
  const double b = 1.0 - a;
  initialized_ = true;

  for (std::uint32_t p = 0; p < partitions_; ++p) {
    const PartitionId pid{p};
    const double q_avg =
        traffic.partition_queries(pid) / static_cast<double>(datacenters_);
    avg_query_[p] = a * avg_query_[p] + b * q_avg;

    double sum = 0.0;
    for (std::uint32_t s = 0; s < servers_; ++s) {
      double& v = node_traffic_[p * servers_ + s];
      v = a * v + b * traffic.node_traffic(pid, ServerId{s});
      sum += v;
    }
    node_traffic_sum_[p] = sum;

    for (std::uint32_t j = 0; j < datacenters_; ++j) {
      double& v = requester_queries_[p * datacenters_ + j];
      v = a * v + b * traffic.requester_queries(pid, DatacenterId{j});
    }
  }
  for (std::uint32_t s = 0; s < servers_; ++s) {
    server_arrival_[s] =
        a * server_arrival_[s] + b * traffic.server_work(ServerId{s});
  }
}

void TrafficStats::clear_server(ServerId s) {
  RFH_ASSERT(s.value() < servers_);
  server_arrival_[s.value()] = 0.0;
  for (std::uint32_t p = 0; p < partitions_; ++p) {
    double& v = node_traffic_[p * servers_ + s.value()];
    if (v == 0.0) continue;
    v = 0.0;
    // Recompute the Eq. 17 numerator from scratch rather than
    // subtracting: the next update() does the same full re-sum, so this
    // keeps the two code paths bit-identical for the oracle.
    double sum = 0.0;
    for (std::uint32_t k = 0; k < servers_; ++k) {
      sum += node_traffic_[p * servers_ + k];
    }
    node_traffic_sum_[p] = sum;
  }
}

double TrafficStats::avg_query(PartitionId p) const {
  RFH_ASSERT(p.value() < partitions_);
  return avg_query_[p.value()];
}

double TrafficStats::node_traffic(PartitionId p, ServerId s) const {
  RFH_ASSERT(p.value() < partitions_ && s.value() < servers_);
  return node_traffic_[p.value() * servers_ + s.value()];
}

double TrafficStats::requester_queries(PartitionId p, DatacenterId j) const {
  RFH_ASSERT(p.value() < partitions_ && j.value() < datacenters_);
  return requester_queries_[p.value() * datacenters_ + j.value()];
}

double TrafficStats::server_arrival(ServerId s) const {
  RFH_ASSERT(s.value() < servers_);
  return server_arrival_[s.value()];
}

double TrafficStats::mean_node_traffic(PartitionId p,
                                       std::size_t live_servers) const {
  RFH_ASSERT(p.value() < partitions_);
  if (live_servers == 0) return 0.0;
  return node_traffic_sum_[p.value()] / static_cast<double>(live_servers);
}

}  // namespace rfh
