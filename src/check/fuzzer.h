// Scenario fuzzing: derive randomized CheckCases — topology shape,
// Table I coefficient ranges, workload kinds and fault plans — from a
// single fuzz seed, so `rfh_check --seeds=N` explores N deterministic,
// independently reproducible engine-vs-reference runs.
#pragma once

#include <cstdint>

#include "check/case.h"

namespace rfh {

/// The fuzzer's dedicated RNG stream tag ("fuzz"), forked from the fuzz
/// seed like the engine's kWorkloadStreamTag is from the scenario seed.
inline constexpr std::uint64_t kFuzzStreamTag = 0x66757A7A;

/// Deterministically expand one fuzz seed into a CheckCase. The same
/// seed always yields the same case; the case's own `seed` field is set
/// to `seed` too, so a diverging case is reproducible from its JSON form
/// alone. Generated parameters stay inside the documented validity
/// ranges (0 < alpha < 1, 0 < phi <= 1, well-formed fault events), so
/// every generated case round-trips through CheckCase::from_json.
[[nodiscard]] CheckCase make_fuzz_case(std::uint64_t seed);

}  // namespace rfh
