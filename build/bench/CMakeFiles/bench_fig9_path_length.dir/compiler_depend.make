# Empty compiler generated dependencies file for bench_fig9_path_length.
# This may be replaced when dependencies are built.
