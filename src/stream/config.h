// Configuration for the streaming load subsystem (src/stream/).
//
// The stream layer disaggregates the engine's per-epoch batch traffic
// into timestamped arrivals and queues them at the serving servers. Its
// contract with batch mode: per-epoch *totals* are identical by
// construction (the stream workload reuses the uniform batch generator
// with mean == arrival_rate, consuming the exact same RNG stream), so
// Eqs. 2-19, the routing/policy phases and the differential oracle are
// untouched. Everything here shapes only *when* within an epoch each
// query arrives and how long it waits.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace rfh {

struct StreamConfig {
  /// Mean arrivals per epoch across all partitions (the batch workload's
  /// mean_queries_per_epoch, so stream and uniform runs at the same seed
  /// generate identical batches). CLI: --arrival-rate.
  double arrival_rate = 300.0;

  /// Per-server waiting-room cap: an arrival finding this many queries
  /// already waiting is dropped by backpressure (counted in
  /// rfh_dropped_backpressure_total, never served, never retried).
  /// CLI: --queue-cap.
  std::uint32_t queue_cap = 32;

  /// Coefficient of variation of the service-time distribution. The
  /// queue is simulated with deterministic service (M/D/c) and its wait
  /// scaled by (1 + cv^2) — the Allen-Cunneen correction relating M/D/c
  /// to M/G/c (see erlang_mgc_mean_wait in common/erlang.h): cv = 1
  /// approximates exponential service, cv = 0 is deterministic.
  /// CLI: --service-cv.
  double service_cv = 1.0;

  /// Mean service time per query, ms. At the Table I defaults a server
  /// holding ~10 queries/epoch offers a = 10 * 1500 / 10000 = 1.5 Erlang
  /// on 4-8 channels — comfortably stable; load factors of 3-4x push hot
  /// servers into queueing and backpressure.
  double service_time_ms = 1500.0;

  /// Wall-clock length of one epoch, ms (Table I: 10 seconds).
  double epoch_ms = 10000.0;

  // --- within-epoch arrival-time modulation -----------------------------
  // Arrival *counts* per epoch come from the batch generator; these knobs
  // shape the timestamp density inside the epoch via an inhomogeneous
  // intensity warped through a piecewise-linear inverse CDF
  // (stream/arrival.cpp). They never change per-epoch totals.

  /// Diurnal sine amplitude (0 disables). Intensity follows
  /// 1 + A * sin(2*pi * epoch_phase) over diurnal_period epochs.
  double diurnal_amplitude = 0.5;
  Epoch diurnal_period = 50;

  /// Flash-crowd multiplier applied to the [flash_start, flash_end)
  /// fraction of every epoch (1.0 disables).
  double flash_factor = 1.0;
  double flash_start = 0.0;
  double flash_end = 0.25;

  /// Popularity drift: when > 0 the stream workload uses the
  /// hotspot-shift batch generator (Zipf with rotating hot set) instead
  /// of uniform, rotating every drift_period epochs by hotspot_drift
  /// partitions. Default 0 keeps exact uniform batch equivalence.
  Epoch drift_period = 0;
  std::uint32_t hotspot_drift = 16;
};

}  // namespace rfh
