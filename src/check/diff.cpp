#include "check/diff.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>
#include <vector>

#include "check/reference.h"
#include "fault/chaos.h"
#include "fault/invariants.h"
#include "harness/scenario.h"
#include "obs/event_bus.h"
#include "sim/engine.h"

namespace rfh {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_u32(std::uint32_t v) { return std::to_string(v); }

/// Buffers every event the engine emits; the harness clears it per epoch
/// and slices it to separate the pre-step (chaos) stream from the
/// in-step stream.
class CaptureSink final : public EventSink {
 public:
  void on_event(const Event& event) override { events.push_back(event); }
  std::vector<Event> events;
};

/// Replay the engine's pre-step failure events into the reference.
/// Consecutive ServerFailed events form one fail_servers batch (the
/// chaos controller always emits a FaultInjected / PrimaryPromoted /
/// Reseeded event between batches), so lost-copy handling runs at the
/// same granularity on both sides.
void mirror_prestep_events(const std::vector<Event>& events,
                           ReferenceEngine& ref) {
  std::vector<ServerId> batch;
  const auto flush = [&] {
    if (!batch.empty()) {
      ref.fail_servers(batch);
      batch.clear();
    }
  };
  for (const Event& event : events) {
    if (const auto* failed = std::get_if<ServerFailed>(&event)) {
      batch.push_back(failed->server);
      continue;
    }
    flush();
    if (const auto* recovered = std::get_if<ServerRecovered>(&event)) {
      const ServerId s[] = {recovered->server};
      ref.recover_servers(s);
    } else if (const auto* link = std::get_if<LinkFailed>(&event)) {
      ref.fail_link(link->a, link->b);
    } else if (const auto* restored = std::get_if<LinkRestored>(&event)) {
      ref.restore_link(restored->a, restored->b);
    } else if (const auto* frozen = std::get_if<StatsFrozen>(&event)) {
      ref.set_stats_frozen(frozen->server, frozen->frozen);
    }
    // FaultInjected / PrimaryPromoted / Reseeded / StripeLost only
    // delimit batches (the reference's own fail_servers replays the
    // stripe scan, so StripeLost needs no mirroring of its own).
  }
  flush();
}

/// The engine's applied actions for one epoch, in emission (apply) order,
/// rebuilt from the in-step event slice.
std::vector<RefAppliedAction> engine_applied(const std::vector<Event>& events,
                                             std::size_t from) {
  std::vector<RefAppliedAction> out;
  for (std::size_t i = from; i < events.size(); ++i) {
    const Event& event = events[i];
    if (const auto* rep = std::get_if<ReplicaAdded>(&event)) {
      out.push_back(RefAppliedAction{ActionKind::kReplicate, rep->partition,
                                     rep->source, rep->target, rep->why.rule});
    } else if (const auto* mig = std::get_if<MigrationExecuted>(&event)) {
      out.push_back(RefAppliedAction{ActionKind::kMigrate, mig->partition,
                                     mig->from, mig->to, mig->why.rule});
    } else if (const auto* sui = std::get_if<Suicide>(&event)) {
      out.push_back(RefAppliedAction{ActionKind::kSuicide, sui->partition,
                                     sui->server, ServerId::invalid(),
                                     sui->why.rule});
    }
  }
  return out;
}

std::string server_name(ServerId s) {
  return s.valid() ? std::to_string(s.value()) : std::string("<invalid>");
}

std::string action_to_string(const RefAppliedAction& a) {
  std::string out = action_kind_name(a.kind);
  out += " p=" + std::to_string(a.partition.value());
  out += " a=" + server_name(a.a);
  out += " b=" + server_name(a.b);
  out += " rule=";
  out += rule_name(a.rule);
  return out;
}

class Comparator {
 public:
  Comparator(DiffOutcome& out, Epoch epoch) : out_(out), epoch_(epoch) {}

  [[nodiscard]] bool failed() const noexcept { return !out_.ok; }

  void mismatch(std::string quantity, std::string detail) {
    if (failed()) return;  // keep the first divergence only
    out_.ok = false;
    out_.epoch = epoch_;
    out_.quantity = std::move(quantity);
    out_.detail = std::move(detail);
  }

  void check_double(const char* quantity, std::string where, double engine,
                    double reference) {
    if (failed() || engine == reference) return;
    mismatch(quantity, std::move(where) + "engine=" + fmt_double(engine) +
                           " reference=" + fmt_double(reference));
  }

  void check_u32(const char* quantity, std::string where, std::uint32_t engine,
                 std::uint32_t reference) {
    if (failed() || engine == reference) return;
    mismatch(quantity, std::move(where) + "engine=" + fmt_u32(engine) +
                           " reference=" + fmt_u32(reference));
  }

 private:
  DiffOutcome& out_;
  Epoch epoch_;
};

void compare_epoch(const Simulation& sim, const EpochReport& er,
                   const std::vector<RefAppliedAction>& engine_actions,
                   const ReferenceEngine& ref, const RefEpochReport& rr,
                   DiffOutcome& out) {
  Comparator cmp(out, er.epoch);

  // 1. Scalar epoch totals (cheap and the most diagnostic first).
  cmp.check_double("total_queries", "", er.total_queries, rr.total_queries);

  // 2. Applied decisions, element-wise with rules.
  if (!cmp.failed() && engine_actions.size() != rr.applied.size()) {
    cmp.mismatch("applied.size",
                 "engine=" + std::to_string(engine_actions.size()) +
                     " reference=" + std::to_string(rr.applied.size()));
  }
  for (std::size_t i = 0; !cmp.failed() && i < engine_actions.size(); ++i) {
    if (engine_actions[i] == rr.applied[i]) continue;
    cmp.mismatch("applied[" + std::to_string(i) + "]",
                 "engine={" + action_to_string(engine_actions[i]) +
                     "} reference={" + action_to_string(rr.applied[i]) + "}");
  }

  // 3. Report counters.
  cmp.check_u32("replications", "", er.replications, rr.replications);
  cmp.check_u32("migrations", "", er.migrations, rr.migrations);
  cmp.check_u32("suicides", "", er.suicides, rr.suicides);
  cmp.check_u32("dropped_actions", "", er.dropped_actions,
                rr.dropped_actions);
  for (std::size_t i = 0; i < kDropReasonCount; ++i) {
    cmp.check_u32("dropped_by_reason",
                  std::string("reason=") +
                      drop_reason_name(static_cast<DropReason>(i)) + " ",
                  er.dropped_by_reason[i], rr.dropped_by_reason[i]);
  }
  cmp.check_double("unserved_queries", "", er.unserved_queries,
                   rr.unserved_queries);
  cmp.check_double("mean_path_length", "", er.mean_path_length,
                   rr.mean_path_length);
  cmp.check_double("replication_cost", "", er.replication_cost,
                   rr.replication_cost);
  cmp.check_double("migration_cost", "", er.migration_cost,
                   rr.migration_cost);
  cmp.check_u32("total_replicas", "", er.total_replicas, rr.total_replicas);
  cmp.check_u32("live_server_count", "", sim.cluster().live_server_count(),
                ref.live_server_count());

  // 4. Placement census per partition.
  const std::uint32_t partitions = sim.config().partitions;
  for (std::uint32_t pv = 0; !cmp.failed() && pv < partitions; ++pv) {
    const PartitionId p{pv};
    const std::string where = "partition=" + std::to_string(pv) + " ";
    const ServerId engine_primary = sim.cluster().primary_of(p);
    const ServerId ref_primary = ref.primary_of(p);
    if (engine_primary != ref_primary) {
      cmp.mismatch("primary", where + "engine=" + server_name(engine_primary) +
                                  " reference=" + server_name(ref_primary));
      break;
    }
    const auto census = [](std::span<const Replica> replicas) {
      std::vector<std::pair<ServerId, bool>> out_list;
      out_list.reserve(replicas.size());
      for (const Replica& r : replicas) out_list.emplace_back(r.server, r.primary);
      std::sort(out_list.begin(), out_list.end());
      return out_list;
    };
    if (census(sim.cluster().replicas_of(p)) != census(ref.replicas_of(p))) {
      cmp.mismatch("replica_census",
                   where + "engine_count=" +
                       std::to_string(sim.cluster().replicas_of(p).size()) +
                       " reference_count=" +
                       std::to_string(ref.replicas_of(p).size()));
      break;
    }
  }

  // 5. Smoothed statistics (Eqs. 9-11), exact.
  const std::size_t servers = sim.topology().server_count();
  for (std::uint32_t pv = 0; !cmp.failed() && pv < partitions; ++pv) {
    const PartitionId p{pv};
    cmp.check_double("avg_query", "partition=" + std::to_string(pv) + " ",
                     sim.stats().avg_query(p), ref.avg_query(p));
    for (std::uint32_t sv = 0; !cmp.failed() && sv < servers; ++sv) {
      const ServerId s{sv};
      cmp.check_double("node_traffic",
                       "partition=" + std::to_string(pv) +
                           " server=" + std::to_string(sv) + " ",
                       sim.stats().node_traffic(p, s), ref.node_traffic(p, s));
    }
  }

  cmp.check_u32("data_losses", "", sim.data_losses(), ref.data_losses());
}

}  // namespace

std::string DiffOutcome::to_string() const {
  if (ok) {
    return "ok after " + std::to_string(epochs_run) + " epochs";
  }
  std::string out = invariant_failure ? "invariant violation" : "divergence";
  out += " at epoch " + std::to_string(epoch) + ": " + quantity;
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

DiffOutcome run_check_case(const CheckCase& c) {
  const Scenario scenario = c.to_scenario();
  const std::unique_ptr<Simulation> sim =
      make_simulation(scenario, PolicyKind::kRfh);
  ReferenceEngine ref(scenario);

  CaptureSink capture;
  sim->events().add_sink(&capture);

  std::optional<ChaosController> chaos;
  if (!scenario.fault_plan.empty()) {
    chaos.emplace(scenario.fault_plan, scenario.sim.seed);
  }
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  std::size_t violations_seen = 0;

  DiffOutcome out;
  for (Epoch e = 0; e < scenario.epochs; ++e) {
    capture.events.clear();
    if (chaos) chaos->before_epoch(*sim, e);
    mirror_prestep_events(capture.events, ref);
    ref.set_traffic_multiplier(sim->traffic_multiplier());

    const std::size_t mark = capture.events.size();
    const EpochReport er = sim->step();
    const RefEpochReport rr = ref.step();
    out.epochs_run = e + 1;

    compare_epoch(*sim, er, engine_applied(capture.events, mark), ref, rr,
                  out);
    if (!out.ok) return out;

    checker.check_epoch(*sim, er);
    if (checker.violations().size() > violations_seen) {
      const auto& v = checker.violations()[violations_seen];
      out.ok = false;
      out.invariant_failure = true;
      out.epoch = v.epoch;
      out.quantity = invariant_name(v.id);
      out.detail = v.detail;
      return out;
    }
    violations_seen = checker.violations().size();
  }
  return out;
}

}  // namespace rfh
