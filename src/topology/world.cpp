#include "topology/world.h"

#include <array>
#include <string>

#include "common/assert.h"

namespace rfh {

namespace {

struct DcSpec {
  const char* name;
  const char* country;
  Continent continent;
  GeoPoint location;
};

// Paper Section III-A: 3 USA, 2 Canada, 2 Switzerland, 1 China, 2 Japan.
// Letters follow Fig. 1 (A holds the running example's hot partition).
constexpr std::array<DcSpec, 10> kPaperDcs = {{
    {"GA1", "USA", Continent::kNorthAmerica, {33.7, -84.4}},    // A Atlanta
    {"CA1", "USA", Continent::kNorthAmerica, {37.8, -122.4}},   // B San Francisco
    {"NY1", "USA", Continent::kNorthAmerica, {40.7, -74.0}},    // C New York
    {"BC1", "CAN", Continent::kNorthAmerica, {49.3, -123.1}},   // D Vancouver
    {"ON1", "CAN", Continent::kNorthAmerica, {43.7, -79.4}},    // E Toronto
    {"ZH1", "CHE", Continent::kEurope, {47.4, 8.5}},            // F Zurich
    {"GE1", "CHE", Continent::kEurope, {46.2, 6.1}},            // G Geneva
    {"BJ1", "CHN", Continent::kAsia, {39.9, 116.4}},            // H Beijing
    {"TY1", "JPN", Continent::kAsia, {35.7, 139.7}},            // I Tokyo
    {"OS1", "JPN", Continent::kAsia, {34.7, 135.5}},            // J Osaka
}};

// Undirected edges by paper letter. Chosen so Asia->A flows funnel through
// D/B (trans-Pacific) and F/C (Eurasia); see world.h. A zero km_override
// uses the great-circle distance; H-I carries an inflated weight (a
// backup route that only attracts traffic when the trans-Pacific link
// I-D fails — without it a single link failure would strand Japan).
struct PaperLink {
  char a;
  char b;
  double km_override;
};
constexpr std::array<PaperLink, 12> kPaperLinks = {{
    {'A', 'B', 0.0},
    {'A', 'C', 0.0},
    {'B', 'C', 0.0},
    {'B', 'D', 0.0},
    {'D', 'E', 0.0},
    {'E', 'C', 0.0},
    {'C', 'F', 0.0},
    {'F', 'G', 0.0},
    {'F', 'H', 0.0},
    {'I', 'D', 0.0},
    {'I', 'J', 0.0},
    {'H', 'I', 4000.0},
}};

ServerSpec draw_spec(const WorldOptions& o, Rng& rng) {
  ServerSpec spec;
  spec.storage_capacity = o.storage_capacity_lo +
                          rng.uniform(o.storage_capacity_hi -
                                      o.storage_capacity_lo + 1);
  spec.per_replica_capacity = rng.uniform_real_range(
      o.per_replica_capacity_lo, o.per_replica_capacity_hi);
  spec.service_channels = static_cast<std::uint32_t>(rng.uniform_range(
      static_cast<std::int64_t>(o.service_channels_lo),
      static_cast<std::int64_t>(o.service_channels_hi)));
  spec.replication_bandwidth = o.replication_bandwidth;
  spec.migration_bandwidth = o.migration_bandwidth;
  // Not RNG-drawn, so raising the cap via partitions_hint cannot perturb
  // the capacity draws of an existing seeded world.
  spec.max_vnodes = std::max(o.max_vnodes, o.partitions_hint);
  return spec;
}

void populate_datacenter(Topology& topo, DatacenterId dc,
                         const WorldOptions& o, Rng& rng) {
  for (std::uint32_t room_i = 0; room_i < o.rooms_per_datacenter; ++room_i) {
    const RoomId room = topo.add_room(dc);
    for (std::uint32_t rack_i = 0; rack_i < o.racks_per_room; ++rack_i) {
      const RackId rack = topo.add_rack(room);
      for (std::uint32_t s = 0; s < o.servers_per_rack; ++s) {
        topo.add_server(rack, draw_spec(o, rng));
      }
    }
  }
}

}  // namespace

DatacenterId World::by_letter(char letter) const {
  const auto index = static_cast<std::size_t>(letter - 'A');
  RFH_ASSERT(index < dc.size());
  return dc[index];
}

World build_paper_world(const WorldOptions& options) {
  World world;
  Rng rng = Rng(options.seed).fork(/*tag=*/0x70706F74 /* "topo" */);

  for (const DcSpec& spec : kPaperDcs) {
    const DatacenterId id = world.topology.add_datacenter(
        spec.name, spec.country, spec.continent, spec.location);
    world.dc.push_back(id);
    populate_datacenter(world.topology, id, options, rng);
  }

  world.links.reserve(kPaperLinks.size());
  for (const PaperLink& link : kPaperLinks) {
    const DatacenterId a = world.by_letter(link.a);
    const DatacenterId b = world.by_letter(link.b);
    const double km = link.km_override > 0.0
                          ? link.km_override
                          : world.topology.distance_km(a, b);
    world.links.push_back(Link{a, b, km});
  }
  return world;
}

World build_synthetic_world(std::uint32_t n_datacenters,
                            const WorldOptions& options,
                            std::span<const std::uint32_t> chord_strides) {
  RFH_ASSERT(n_datacenters >= 1);
  World world;
  Rng rng = Rng(options.seed).fork(/*tag=*/0x73796E74 /* "synt" */);

  // Spread datacenters evenly around a latitude band; names DC01, DC02...
  for (std::uint32_t i = 0; i < n_datacenters; ++i) {
    const double lon =
        -180.0 + 360.0 * static_cast<double>(i) /
                     static_cast<double>(n_datacenters);
    const auto continent = static_cast<Continent>(i % 6);
    // += instead of operator+ on temporaries: GCC 12 -O3 raises a
    // spurious -Wrestrict on the latter (PR105651).
    std::string dc_name("DC");
    dc_name += std::to_string(i + 1);
    std::string dc_code("X");
    dc_code += std::to_string(i + 1);
    const DatacenterId id = world.topology.add_datacenter(
        std::move(dc_name), std::move(dc_code), continent, GeoPoint{20.0, lon});
    world.dc.push_back(id);
    populate_datacenter(world.topology, id, options, rng);
  }

  // Ring plus chords: connected and with a nontrivial hub structure for
  // any n >= 4. The legacy chord rule (every 3 hops, diameter O(n/3))
  // applies when no strides are given; explicit log-spaced strides give
  // backbone-like O(log n) diameters for the large-N scaling benches.
  for (std::uint32_t i = 0; i < n_datacenters; ++i) {
    const DatacenterId a = world.dc[i];
    const DatacenterId b = world.dc[(i + 1) % n_datacenters];
    if (n_datacenters > 1 && (i + 1) % n_datacenters != i) {
      world.links.push_back(Link{a, b, world.topology.distance_km(a, b)});
    }
    if (chord_strides.empty()) {
      if (n_datacenters > 4 && i % 3 == 0) {
        const DatacenterId c = world.dc[(i + 3) % n_datacenters];
        world.links.push_back(Link{a, c, world.topology.distance_km(a, c)});
      }
      continue;
    }
    for (const std::uint32_t stride : chord_strides) {
      if (stride >= 2 && stride < n_datacenters && i % stride == 0) {
        const DatacenterId c = world.dc[(i + stride) % n_datacenters];
        world.links.push_back(Link{a, c, world.topology.distance_km(a, c)});
      }
    }
  }
  return world;
}

}  // namespace rfh
