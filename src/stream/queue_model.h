// Per-server FIFO queue with c parallel service channels and a bounded
// waiting room.
//
// The simulation is event-free M/D/c: deterministic service times, a
// min-heap of channel completion times, and explicit backpressure — an
// arrival that finds `queue_cap` queries already waiting is dropped (the
// stream layer counts it in rfh_dropped_backpressure_total; it is never
// retried). The caller scales the simulated deterministic-service wait by
// (1 + cv^2) to approximate M/G/c — the same Allen-Cunneen correction
// erlang_mgc_mean_wait (common/erlang.h) applies analytically, since
// W(M/D/c) ~= W(M/M/c)/2 and W(M/G/c) ~= W(M/M/c)(1+cv^2)/2.
//
// Blocking (Erlang-B, Eq. 18) remains the batch engine's job: by the time
// arrivals reach a ServerQueue they have already survived routing and
// capacity absorption, so the queue adds waiting time on top of — never
// instead of — the paper's loss model.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

namespace rfh {

class ServerQueue {
 public:
  struct Outcome {
    /// False when the arrival was dropped by backpressure.
    bool accepted = false;
    /// Queueing delay before a channel started serving, ms (0 when a
    /// channel was free on arrival). Deterministic-service wait; callers
    /// apply the (1 + cv^2) M/G/c correction.
    double wait_ms = 0.0;
    /// Waiting-room occupancy the arrival observed (before joining).
    std::uint32_t depth = 0;
  };

  ServerQueue(std::uint32_t channels, double service_ms,
              std::uint32_t queue_cap) noexcept
      : channels_(channels), service_ms_(service_ms), queue_cap_(queue_cap) {}

  /// Offer one arrival at time `t` (ms). Calls must be in non-decreasing
  /// t order — the stream layer sorts each server's arrivals first.
  Outcome offer(double t);

  /// Largest waiting-room occupancy observed, *including* the arrival
  /// that joined it — by construction <= queue_cap (arrivals at cap are
  /// dropped), which is exactly the kQueueDepth invariant.
  [[nodiscard]] std::uint32_t max_depth() const noexcept { return max_depth_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint32_t channels() const noexcept { return channels_; }

 private:
  std::uint32_t channels_;
  double service_ms_;
  std::uint32_t queue_cap_;
  /// Completion times of in-flight queries (min-heap).
  std::priority_queue<double, std::vector<double>, std::greater<>> busy_;
  /// Service *start* times of queries still waiting at the current
  /// arrival time; start times are assigned in FIFO order so the deque
  /// stays sorted and popping the front retires waiters as time advances.
  std::deque<double> pending_;
  std::uint32_t max_depth_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t accepted_ = 0;
};

}  // namespace rfh
