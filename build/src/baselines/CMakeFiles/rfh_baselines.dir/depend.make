# Empty dependencies file for rfh_baselines.
# This may be replaced when dependencies are built.
