// Cross-module property sweeps (parameterized): invariants that must hold
// for any seed, size, or threshold configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <unordered_map>

#include "common/availability.h"
#include "core/rfh_policy.h"
#include "harness/report.h"
#include "harness/runner.h"
#include "net/graph.h"
#include "ring/hash.h"
#include "ring/ring.h"
#include "sim/cluster.h"
#include "sim/tables.h"
#include "test_util.h"
#include "topology/world.h"

namespace rfh {
namespace {

// ---------------------------------------------------------------------
// Ring balance across sizes and token counts.
class RingBalanceTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(RingBalanceTest, TokenCountControlsSpread) {
  const auto [servers, tokens] = GetParam();
  HashRing ring(tokens);
  for (std::uint32_t s = 0; s < servers; ++s) ring.add_server(ServerId{s});

  std::vector<int> counts(servers, 0);
  Rng rng(1234);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    ++counts[ring.primary(rng.next()).value()];
  }
  // Every server owns keyspace, and nobody owns more than a small
  // multiple of its fair share (looser for fewer tokens).
  const double fair = static_cast<double>(n) / servers;
  const double slack = tokens >= 16 ? 3.0 : 6.0;
  for (std::uint32_t s = 0; s < servers; ++s) {
    EXPECT_GT(counts[s], 0) << "server " << s << " owns nothing";
    EXPECT_LT(counts[s], slack * fair) << "server " << s << " over-owns";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTokens, RingBalanceTest,
    ::testing::Combine(::testing::Values<std::uint32_t>(3, 10, 50),
                       ::testing::Values<std::uint32_t>(4, 16, 64)));

// ---------------------------------------------------------------------
// Traffic propagation invariants under random demand and capacities.
class PropagationInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(PropagationInvariantTest, ConservationCapacityAndNonNegativity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  SimConfig config;
  config.partitions = 6;
  WorldOptions options;
  options.per_replica_capacity_lo = 0.5 + rng.uniform_real() * 2.0;
  options.per_replica_capacity_hi =
      options.per_replica_capacity_lo + rng.uniform_real() * 4.0;
  options.seed = rng.next();

  // Random fixed demand.
  QueryBatch batch;
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    const auto requesters = 1 + rng.uniform(4);
    for (std::uint64_t j = 0; j < requesters; ++j) {
      batch.push_back(QueryFlow{
          PartitionId{p},
          DatacenterId{static_cast<std::uint32_t>(rng.uniform(10))},
          1.0 + rng.uniform_real() * 20.0});
    }
  }
  // Random policy so replica sets evolve while we check.
  auto sim = test::make_fixed_sim(batch, std::make_unique<RfhPolicy>(),
                                  config, options);
  for (int e = 0; e < 20; ++e) {
    sim->step();
    const EpochTraffic& traffic = sim->traffic();
    for (std::uint32_t pv = 0; pv < config.partitions; ++pv) {
      const PartitionId p{pv};
      double served = 0.0;
      for (std::uint32_t sv = 0; sv < traffic.servers(); ++sv) {
        const ServerId s{sv};
        EXPECT_GE(traffic.served(p, s), 0.0);
        EXPECT_GE(traffic.node_traffic(p, s), 0.0);
        EXPECT_LE(traffic.served(p, s),
                  sim->topology().server(s).spec.per_replica_capacity + 1e-9);
        served += traffic.served(p, s);
      }
      EXPECT_NEAR(served + traffic.unserved(p), traffic.partition_queries(p),
                  1e-6);
    }
    sim->cluster().check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationInvariantTest,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// Threshold sweeps: the decision tree must stay sane for any reasonable
// beta/gamma/delta/mu.
struct ThresholdCase {
  double beta;
  double gamma;
  double delta;
  double mu;
};

class ThresholdSweepTest : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdSweepTest, RfhStaysWithinFloorAndCap) {
  const ThresholdCase& c = GetParam();
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  scenario.sim.beta = c.beta;
  scenario.sim.gamma = c.gamma;
  scenario.sim.delta = c.delta;
  scenario.sim.mu = c.mu;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh);
  const std::uint32_t floor =
      min_replicas(scenario.sim.min_availability, scenario.sim.failure_rate);
  // Tail census bounded by floor and cap.
  const double avg_tail =
      tail_mean(run, &EpochMetrics::avg_replicas_per_partition, 15);
  EXPECT_GE(avg_tail, static_cast<double>(floor) - 0.1);
  EXPECT_LE(avg_tail,
            static_cast<double>(scenario.sim.max_replicas_per_partition));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThresholdSweepTest,
    ::testing::Values(ThresholdCase{1.2, 1.1, 0.1, 0.5},
                      ThresholdCase{2.0, 1.5, 0.2, 1.0},
                      ThresholdCase{3.0, 2.0, 0.4, 2.0},
                      ThresholdCase{4.0, 3.0, 0.05, 4.0},
                      ThresholdCase{1.5, 2.5, 0.6, 0.25}));

// ---------------------------------------------------------------------
// Availability floor inverse property over a grid.
class FloorGridTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FloorGridTest, MinReplicasIsTheLeastSufficientCount) {
  const auto [target, f] = GetParam();
  const std::uint32_t r = min_replicas(target, f);
  EXPECT_GE(availability(r, f), target);
  if (r > 2) {
    EXPECT_LT(availability(r - 1, f), target);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TargetsAndFailureRates, FloorGridTest,
    ::testing::Combine(::testing::Values(0.8, 0.9, 0.99, 0.9999),
                       ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75)));

// ---------------------------------------------------------------------
// Scenario determinism across every policy and workload kind.
struct DeterminismCase {
  PolicyKind policy;
  WorkloadKind workload;
};

class DeterminismTest : public ::testing::TestWithParam<DeterminismCase> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalSeries) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.workload = GetParam().workload;
  scenario.epochs = 40;
  const PolicyRun a = run_policy(scenario, GetParam().policy);
  const PolicyRun b = run_policy(scenario, GetParam().policy);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].total_replicas, b.series[i].total_replicas);
    EXPECT_EQ(a.series[i].migrations_total, b.series[i].migrations_total);
    EXPECT_DOUBLE_EQ(a.series[i].utilization, b.series[i].utilization);
    EXPECT_DOUBLE_EQ(a.series[i].replication_cost_total,
                     b.series[i].replication_cost_total);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyWorkloadGrid, DeterminismTest,
    ::testing::Values(
        DeterminismCase{PolicyKind::kRequest, WorkloadKind::kUniform},
        DeterminismCase{PolicyKind::kOwner, WorkloadKind::kFlashCrowd},
        DeterminismCase{PolicyKind::kRandom, WorkloadKind::kHotspotShift},
        DeterminismCase{PolicyKind::kRfh, WorkloadKind::kUniform},
        DeterminismCase{PolicyKind::kRfh, WorkloadKind::kFlashCrowd}));

// ---------------------------------------------------------------------
// The simulation scales to bigger synthetic worlds without violating
// invariants.
class WorldScaleTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WorldScaleTest, BiggerWorldsRunCleanly) {
  const std::uint32_t n_dcs = GetParam();
  World world = build_synthetic_world(n_dcs);
  SimConfig config;
  config.partitions = 16;
  WorkloadParams params;
  params.partitions = 16;
  params.datacenters = n_dcs;
  params.mean_queries_per_epoch = 30.0 * n_dcs;
  auto sim = std::make_unique<Simulation>(
      std::move(world), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<RfhPolicy>());
  for (int e = 0; e < 25; ++e) sim->step();
  sim->cluster().check_invariants();
  EXPECT_GT(sim->cluster().total_replicas(), 16u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WorldScaleTest,
                         ::testing::Values<std::uint32_t>(2, 5, 10, 25));

// ---------------------------------------------------------------------
// Chaos property: any seeded random fault plan must run to completion
// with zero invariant violations. The replica_floor invariant inside the
// checker is the paper-level property: a partition below the Eq. 14
// minimum is only ever explained by a recorded failure (lost copy on a
// dead server / data loss), never by a voluntary policy action.
FaultPlan random_fault_plan(std::uint64_t seed, Epoch horizon) {
  Rng rng(seed);
  FaultPlan plan;

  FaultEvent crash;
  crash.kind = FaultKind::kCrash;
  crash.at = static_cast<Epoch>(5 + rng.uniform(horizon / 3));
  crash.count = static_cast<std::uint32_t>(1 + rng.uniform(6));
  plan.add(crash);

  FaultEvent outage;
  outage.kind = FaultKind::kDatacenterOutage;
  outage.at = static_cast<Epoch>(10 + rng.uniform(horizon / 2));
  outage.dc = DatacenterId{static_cast<std::uint32_t>(rng.uniform(10))};
  outage.recover_after = static_cast<Epoch>(2 + rng.uniform(12));
  plan.add(outage);

  FaultEvent churn;
  churn.kind = FaultKind::kChurn;
  churn.at = static_cast<Epoch>(rng.uniform(horizon / 4));
  churn.until = static_cast<Epoch>(
      churn.at + 10 + rng.uniform(horizon - churn.at));
  churn.period = static_cast<Epoch>(2 + rng.uniform(8));
  churn.kill = static_cast<std::uint32_t>(1 + rng.uniform(3));
  churn.recover = churn.kill;  // rolling wave: population stays bounded
  plan.add(churn);

  FaultEvent flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.at = static_cast<Epoch>(rng.uniform(horizon / 2));
  flap.until = static_cast<Epoch>(flap.at + 10 + rng.uniform(30));
  flap.link_a = DatacenterId{static_cast<std::uint32_t>(rng.uniform(10))};
  flap.link_b = DatacenterId{
      static_cast<std::uint32_t>((flap.link_a.value() + 1 + rng.uniform(9)) %
                                 10)};
  flap.period = static_cast<Epoch>(2 + rng.uniform(6));
  flap.down = static_cast<Epoch>(1 + rng.uniform(flap.period));
  plan.add(flap);

  FaultEvent crowd;
  crowd.kind = FaultKind::kFlashCrowd;
  crowd.at = static_cast<Epoch>(rng.uniform(horizon));
  crowd.duration = static_cast<Epoch>(1 + rng.uniform(20));
  crowd.factor = 1.5 + rng.uniform_real() * 4.0;
  plan.add(crowd);

  FaultEvent heal;
  heal.kind = FaultKind::kRecover;
  heal.at = static_cast<Epoch>(horizon - 1 - rng.uniform(horizon / 4));
  heal.count = static_cast<std::uint32_t>(1 + rng.uniform(8));
  plan.add(heal);

  return plan;
}

class ChaosPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosPropertyTest, RandomPlansRunWithZeroViolations) {
  constexpr Epoch kHorizon = 80;
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = kHorizon;
  scenario.fault_plan = random_fault_plan(GetParam(), kHorizon);

  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun run =
      run_policy(scenario, PolicyKind::kRfh, {}, RfhPolicy::Options{},
                 nullptr, nullptr, nullptr, &checker);

  EXPECT_EQ(checker.epochs_checked(), kHorizon);
  EXPECT_TRUE(checker.violations().empty()) << checker.summary();
  // The plan actually did something, and every chaos kill was surfaced.
  EXPECT_GT(run.faults_injected, 0u);
  std::uint64_t kind_sum = 0;
  for (const std::uint64_t n : run.faults_by_kind) kind_sum += n;
  EXPECT_EQ(kind_sum, run.faults_injected);
  EXPECT_EQ(run.series.size(), kHorizon);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPropertyTest,
                         ::testing::Values<std::uint64_t>(1, 7, 42, 1000,
                                                          31337, 987654321));

// The same seeded plan must injure the same servers in the same order —
// chaos victim selection has its own RNG stream, so repeated runs agree
// even though the plan interleaves with workload and policy randomness.
TEST(ChaosPropertyTest, SamePlanSameSeedKillsIdentically) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 60;
  scenario.fault_plan = random_fault_plan(99, 60);
  const PolicyRun a = run_policy(scenario, PolicyKind::kRfh);
  const PolicyRun b = run_policy(scenario, PolicyKind::kRfh);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
}

// --------------------------------------------------------------------------
// Flat-ring reference check (promised by ring.h): the sorted-array +
// successor-cache HashRing is defined to be byte-identical to the seed's
// std::map walk. A reference implementation with the same token hashing
// and collision probe is driven through randomized add/remove
// interleavings, and both structures are compared on every lookup path
// after every mutation.

/// The seed implementation: token positions in a std::map, every
/// preference_list a fresh clockwise distinct-server walk.
class MapRingReference {
 public:
  explicit MapRingReference(std::uint32_t tokens_per_server)
      : tokens_per_server_(tokens_per_server) {}

  void add_server(ServerId server) {
    auto& positions = server_tokens_[server];
    for (std::uint32_t i = 0; i < tokens_per_server_; ++i) {
      std::uint64_t pos = hash_combine(hash64(std::uint64_t{server.value()}),
                                       hash64(std::uint64_t{i}));
      while (ring_.contains(pos)) ++pos;  // same probe as HashRing
      ring_.emplace(pos, server);
      positions.push_back(pos);
    }
  }

  void remove_server(ServerId server) {
    const auto it = server_tokens_.find(server);
    if (it == server_tokens_.end()) return;
    for (const std::uint64_t pos : it->second) ring_.erase(pos);
    server_tokens_.erase(it);
  }

  [[nodiscard]] ServerId primary(std::uint64_t key) const {
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

  [[nodiscard]] std::vector<ServerId> preference_list(std::uint64_t key,
                                                      std::size_t n) const {
    std::vector<ServerId> out;
    out.reserve(n);
    auto it = ring_.lower_bound(key);
    if (it == ring_.end()) it = ring_.begin();
    for (std::size_t step = 0;
         step < ring_.size() && out.size() < n &&
         out.size() < server_tokens_.size();
         ++step) {
      if (std::find(out.begin(), out.end(), it->second) == out.end()) {
        out.push_back(it->second);
      }
      ++it;
      if (it == ring_.end()) it = ring_.begin();
    }
    return out;
  }

  [[nodiscard]] std::size_t server_count() const noexcept {
    return server_tokens_.size();
  }

 private:
  std::uint32_t tokens_per_server_;
  std::map<std::uint64_t, ServerId> ring_;
  std::unordered_map<ServerId, std::vector<std::uint64_t>> server_tokens_;
};

class RingReferenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RingReferenceTest, FlatLookupMatchesMapWalkUnderRandomInterleavings) {
  constexpr std::uint32_t kTokens = 8;
  HashRing flat(kTokens);
  MapRingReference reference(kTokens);
  std::mt19937_64 rng(GetParam());

  std::vector<ServerId> members;
  std::uint32_t next_id = 1;
  const auto check_agreement = [&] {
    if (members.empty()) return;
    // A fixed key set plus fresh random keys each round: the fixed keys
    // re-query cached successor slots across invalidations, the random
    // keys probe cold slots.
    for (int k = 0; k < 24; ++k) {
      const std::uint64_t key =
          k < 8 ? hash64(static_cast<std::uint64_t>(k)) : rng();
      ASSERT_EQ(flat.primary(key), reference.primary(key)) << "key " << key;
      for (const std::size_t n :
           {std::size_t{1}, std::size_t{3}, members.size(),
            members.size() + 5}) {
        ASSERT_EQ(flat.preference_list(key, n),
                  reference.preference_list(key, n))
            << "key " << key << " n " << n;
      }
    }
  };

  for (int step = 0; step < 120; ++step) {
    const bool remove = !members.empty() &&
                        (members.size() > 40 || rng() % 3 == 0);
    if (remove) {
      const std::size_t victim = rng() % members.size();
      const ServerId gone = members[victim];
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(victim));
      flat.remove_server(gone);
      reference.remove_server(gone);
      EXPECT_FALSE(flat.contains(gone));
    } else {
      const ServerId fresh{next_id++};
      members.push_back(fresh);
      flat.add_server(fresh);
      reference.add_server(fresh);
      EXPECT_TRUE(flat.contains(fresh));
    }
    ASSERT_EQ(flat.server_count(), reference.server_count());
    check_agreement();
  }
}

TEST_P(RingReferenceTest, SuccessorCacheNeverServesARemovedServer) {
  // The per-token successor lists are built lazily and invalidated on
  // membership epochs; a stale cache would keep serving a departed
  // server. Warm the cache, remove servers, and assert no lookup path
  // ever returns a dead one.
  constexpr std::uint32_t kTokens = 16;
  HashRing ring(kTokens);
  std::mt19937_64 rng(GetParam() ^ 0x9e3779b97f4a7c15ull);

  std::vector<ServerId> members;
  for (std::uint32_t s = 1; s <= 32; ++s) {
    members.push_back(ServerId{s});
    ring.add_server(ServerId{s});
  }
  std::vector<std::uint64_t> keys(64);
  for (std::uint64_t& key : keys) key = rng();

  std::vector<ServerId> dead;
  while (members.size() > 1) {
    // Warm every sampled slot's successor cache at the current epoch.
    for (const std::uint64_t key : keys) {
      (void)ring.preference_list(key, members.size());
    }
    const std::uint64_t epoch_before = ring.membership_epoch();
    const std::size_t victim = rng() % members.size();
    dead.push_back(members[victim]);
    ring.remove_server(members[victim]);
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(victim));
    EXPECT_GT(ring.membership_epoch(), epoch_before);

    for (const std::uint64_t key : keys) {
      const std::vector<ServerId> pref =
          ring.preference_list(key, members.size() + dead.size());
      EXPECT_EQ(pref.size(), members.size());
      for (const ServerId s : pref) {
        EXPECT_EQ(std::find(dead.begin(), dead.end(), s), dead.end())
            << "dead server " << s.value() << " served from successor cache";
      }
      EXPECT_EQ(std::find(dead.begin(), dead.end(), ring.primary(key)),
                dead.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingReferenceTest,
                         ::testing::Values<std::uint64_t>(3, 17, 404, 90210));

// --------------------------------------------------------------------------
// Flat SoA table reference check (promised by sim/tables.h): the strided
// PartitionTable slab must behave exactly like the seed's nested
// vector-of-vectors — same insertion order, same shift-on-remove
// sequence — and the ServerTable columns like plain per-server maps.
// Randomized interleavings force stride growth (slab rebuilds) mid-run.

class TableReferenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TableReferenceTest, StridedSlabMatchesNestedVectorsUnderChurn) {
  constexpr std::uint32_t kPartitions = 12;
  constexpr std::uint32_t kServers = 40;
  PartitionTable table(kPartitions, /*initial_stride=*/2);
  std::vector<std::vector<Replica>> reference(kPartitions);
  std::mt19937_64 rng(GetParam());

  const auto check_agreement = [&] {
    std::uint32_t total = 0;
    for (std::uint32_t pv = 0; pv < kPartitions; ++pv) {
      const PartitionId p{pv};
      const std::vector<Replica>& row = reference[pv];
      total += static_cast<std::uint32_t>(row.size());
      ASSERT_EQ(table.count(p), row.size());
      const std::span<const Replica> slab = table.replicas(p);
      ASSERT_EQ(slab.size(), row.size());
      for (std::size_t i = 0; i < row.size(); ++i) {
        EXPECT_EQ(slab[i].server, row[i].server) << "p " << pv << " slot " << i;
        EXPECT_EQ(slab[i].primary, row[i].primary)
            << "p " << pv << " slot " << i;
      }
      for (std::uint32_t sv = 0; sv < kServers; ++sv) {
        const bool hosted =
            std::find_if(row.begin(), row.end(), [sv](const Replica& r) {
              return r.server == ServerId{sv};
            }) != row.end();
        ASSERT_EQ(table.has(p, ServerId{sv}), hosted);
      }
      const auto primary =
          std::find_if(row.begin(), row.end(),
                       [](const Replica& r) { return r.primary; });
      if (primary != row.end()) {
        EXPECT_EQ(table.primary_of(p), primary->server);
      }
    }
    EXPECT_EQ(table.total(), total);
  };

  for (int step = 0; step < 400; ++step) {
    const std::uint32_t pv =
        static_cast<std::uint32_t>(rng() % kPartitions);
    const PartitionId p{pv};
    std::vector<Replica>& row = reference[pv];
    // Bias toward adds on one hot partition so its row outgrows the
    // initial stride several times (doubling slab rebuilds).
    const bool add = row.empty() || (rng() % 3 != 0 && row.size() < kServers);
    if (add) {
      std::uint32_t sv = static_cast<std::uint32_t>(rng() % kServers);
      while (table.has(p, ServerId{sv})) sv = (sv + 1) % kServers;
      const bool primary = row.empty();
      table.add(p, ServerId{sv}, primary);
      row.push_back(Replica{ServerId{sv}, primary});
    } else if (rng() % 4 == 0 && row.size() > 1) {
      // Re-point the primary at a random member, like a promotion.
      const std::size_t pick = rng() % row.size();
      table.set_primary(p, row[pick].server);
      for (std::size_t i = 0; i < row.size(); ++i) {
        row[i].primary = i == pick;
      }
    } else {
      // Remove a random non-primary copy (the engine never drops a
      // primary without promoting first).
      std::vector<std::size_t> removable;
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (!row[i].primary) removable.push_back(i);
      }
      if (removable.empty()) continue;
      const std::size_t victim = removable[rng() % removable.size()];
      table.remove(p, row[victim].server);
      row.erase(row.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    check_agreement();
  }
  EXPECT_GT(table.stride(), 2u) << "sweep never forced a slab rebuild";
}

TEST_P(TableReferenceTest, ServerColumnsMatchPlainMapsUnderChurn) {
  constexpr std::uint32_t kServers = 24;
  ServerTable table(kServers);
  table.bring_all_up();
  struct RefServer {
    bool alive = true;
    Bytes storage = 0;
    std::uint32_t copies = 0;
  };
  std::vector<RefServer> reference(kServers);
  std::mt19937_64 rng(GetParam() ^ 0xfeedface);

  std::uint32_t live = kServers;
  for (int step = 0; step < 300; ++step) {
    const std::uint32_t sv = static_cast<std::uint32_t>(rng() % kServers);
    const ServerId s{sv};
    RefServer& ref = reference[sv];
    switch (rng() % 4) {
      case 0:
        table.set_alive(s, !ref.alive);
        ref.alive = !ref.alive;
        live += ref.alive ? 1u : -1u;
        break;
      case 1: {
        const Bytes bytes = kib(1 + rng() % 512);
        table.add_storage(s, bytes);
        table.inc_copies(s);
        ref.storage += bytes;
        ++ref.copies;
        break;
      }
      default:
        if (ref.copies > 0) {
          // Mirror remove_replica: storage and copy count drop together.
          const Bytes bytes = ref.storage / ref.copies;
          table.sub_storage(s, bytes);
          table.dec_copies(s);
          ref.storage -= bytes;
          --ref.copies;
        }
        break;
    }
    ASSERT_EQ(table.live_count(), live);
    for (std::uint32_t v = 0; v < kServers; ++v) {
      ASSERT_EQ(table.alive(ServerId{v}), reference[v].alive);
      ASSERT_EQ(table.storage_used(ServerId{v}), reference[v].storage);
      ASSERT_EQ(table.copies(ServerId{v}), reference[v].copies);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableReferenceTest,
                         ::testing::Values<std::uint64_t>(5, 71, 1009, 52662));

// --------------------------------------------------------------------------
// ClusterState vs a naive reference under membership churn, server death
// and action application. The reference keeps nested vectors plus plain
// liveness flags; every mutation runs against both and the full placement
// state is compared — including hosts_in_dc's deterministic absorption
// order and the ascending-partition order of kill_server's loss report.

class ClusterReferenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterReferenceTest, FlatTablesMatchNaiveReferenceUnderChurn) {
  WorldOptions options;
  options.seed = GetParam();
  const World world = build_synthetic_world(4, options);
  const std::uint32_t n_servers =
      static_cast<std::uint32_t>(world.topology.server_count());
  SimConfig config;
  config.partitions = 20;

  ClusterState cluster(world.topology, config);
  std::vector<std::vector<Replica>> rows(config.partitions);
  std::vector<bool> ref_alive(n_servers, true);
  std::mt19937_64 rng(GetParam() * 2654435761u + 3);

  // Seed one primary per partition on an arbitrary live server.
  for (std::uint32_t pv = 0; pv < config.partitions; ++pv) {
    const ServerId s{pv % n_servers};
    cluster.add_replica(PartitionId{pv}, s, /*primary=*/true);
    rows[pv].push_back(Replica{s, true});
  }

  const auto ref_add = [&](std::uint32_t pv, ServerId s, bool primary) {
    rows[pv].push_back(Replica{s, primary});
  };
  const auto ref_remove = [&](std::uint32_t pv, ServerId s) {
    std::vector<Replica>& row = rows[pv];
    row.erase(std::find_if(row.begin(), row.end(), [s](const Replica& r) {
      return r.server == s;
    }));
  };
  const auto ref_set_primary = [&](std::uint32_t pv, ServerId s) {
    for (Replica& r : rows[pv]) r.primary = r.server == s;
  };
  // Mirror of the engine's lost-primary handling: promote a surviving
  // copy, else re-seed on any server that can accept one.
  const auto repromote = [&](PartitionId p) {
    if (!rows[p.value()].empty()) {
      const ServerId survivor = rows[p.value()].front().server;
      cluster.set_primary(p, survivor);
      ref_set_primary(p.value(), survivor);
      return;
    }
    for (std::uint32_t sv = 0; sv < n_servers; ++sv) {
      if (cluster.can_accept(ServerId{sv}, p)) {
        cluster.add_replica(p, ServerId{sv}, /*primary=*/true);
        ref_add(p.value(), ServerId{sv}, true);
        return;
      }
    }
  };

  const auto check_agreement = [&] {
    std::uint32_t total = 0;
    for (std::uint32_t pv = 0; pv < config.partitions; ++pv) {
      const PartitionId p{pv};
      const std::vector<Replica>& row = rows[pv];
      total += static_cast<std::uint32_t>(row.size());
      ASSERT_EQ(cluster.replica_count(p), row.size()) << "p " << pv;
      const std::span<const Replica> got = cluster.replicas_of(p);
      for (std::size_t i = 0; i < row.size(); ++i) {
        ASSERT_EQ(got[i].server, row[i].server) << "p " << pv;
        ASSERT_EQ(got[i].primary, row[i].primary) << "p " << pv;
      }
    }
    EXPECT_EQ(cluster.total_replicas(), total);
    // Per-server columns reconcile with the rows.
    std::vector<std::uint32_t> copies(n_servers, 0);
    for (const std::vector<Replica>& row : rows) {
      for (const Replica& r : row) ++copies[r.server.value()];
    }
    for (std::uint32_t sv = 0; sv < n_servers; ++sv) {
      ASSERT_EQ(cluster.copies_on(ServerId{sv}), copies[sv]);
      ASSERT_EQ(cluster.alive(ServerId{sv}), ref_alive[sv]);
      ASSERT_EQ(cluster.storage_used(ServerId{sv}),
                copies[sv] * config.partition_size);
    }
    // hosts_in_dc: non-primaries first, each group ascending server id.
    for (const DatacenterId dc : world.dc) {
      const PartitionId p{static_cast<std::uint32_t>(rng() %
                                                     config.partitions)};
      std::vector<ServerId> expected;
      for (const bool primary_pass : {false, true}) {
        std::vector<ServerId> group;
        for (const Replica& r : rows[p.value()]) {
          if (r.primary == primary_pass &&
              world.topology.server(r.server).datacenter == dc) {
            group.push_back(r.server);
          }
        }
        std::sort(group.begin(), group.end());
        expected.insert(expected.end(), group.begin(), group.end());
      }
      ASSERT_EQ(cluster.hosts_in_dc(p, dc), expected);
    }
    cluster.check_invariants();
  };

  std::uint32_t live = n_servers;
  for (int step = 0; step < 200; ++step) {
    const std::uint32_t pv =
        static_cast<std::uint32_t>(rng() % config.partitions);
    const PartitionId p{pv};
    switch (rng() % 5) {
      case 0: {  // replicate: apply on any server that can accept
        const std::uint32_t start = static_cast<std::uint32_t>(rng() %
                                                               n_servers);
        for (std::uint32_t i = 0; i < n_servers; ++i) {
          const ServerId s{(start + i) % n_servers};
          if (cluster.can_accept(s, p)) {
            cluster.add_replica(p, s);
            ref_add(pv, s, false);
            break;
          }
        }
        break;
      }
      case 1: {  // suicide a random non-primary copy
        std::vector<ServerId> removable;
        for (const Replica& r : rows[pv]) {
          if (!r.primary) removable.push_back(r.server);
        }
        if (removable.empty()) break;
        const ServerId victim = removable[rng() % removable.size()];
        cluster.remove_replica(p, victim);
        ref_remove(pv, victim);
        break;
      }
      case 2: {  // promotion (migration's second half)
        if (rows[pv].empty()) break;
        const ServerId target =
            rows[pv][rng() % rows[pv].size()].server;
        cluster.set_primary(p, target);
        ref_set_primary(pv, target);
        break;
      }
      case 3: {  // kill: loss report must match in content and order
        if (live <= n_servers / 2) break;
        std::uint32_t sv = static_cast<std::uint32_t>(rng() % n_servers);
        while (!ref_alive[sv]) sv = (sv + 1) % n_servers;
        const ServerId s{sv};
        std::vector<ClusterState::LostCopy> expected;
        for (std::uint32_t qv = 0; qv < config.partitions; ++qv) {
          const auto& row = rows[qv];
          const auto it =
              std::find_if(row.begin(), row.end(), [s](const Replica& r) {
                return r.server == s;
              });
          if (it != row.end()) {
            expected.push_back(
                ClusterState::LostCopy{PartitionId{qv}, it->primary});
          }
        }
        const std::vector<ClusterState::LostCopy> lost =
            cluster.kill_server(s);
        ASSERT_EQ(lost.size(), expected.size());
        for (std::size_t i = 0; i < lost.size(); ++i) {
          EXPECT_EQ(lost[i].partition, expected[i].partition);
          EXPECT_EQ(lost[i].was_primary, expected[i].was_primary);
        }
        ref_alive[sv] = false;
        --live;
        for (const ClusterState::LostCopy& l : expected) {
          ref_remove(l.partition.value(), s);
        }
        for (const ClusterState::LostCopy& l : expected) {
          if (l.was_primary) repromote(l.partition);
        }
        break;
      }
      default: {  // revive a random dead server
        std::vector<std::uint32_t> dead;
        for (std::uint32_t sv = 0; sv < n_servers; ++sv) {
          if (!ref_alive[sv]) dead.push_back(sv);
        }
        if (dead.empty()) break;
        const std::uint32_t sv = dead[rng() % dead.size()];
        cluster.revive_server(ServerId{sv});
        ref_alive[sv] = true;
        ++live;
        break;
      }
    }
    check_agreement();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterReferenceTest,
                         ::testing::Values<std::uint64_t>(2, 19, 777, 31415));

}  // namespace
}  // namespace rfh
