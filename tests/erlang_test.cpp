#include "common/erlang.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rfh {
namespace {

// Direct evaluation of Eq. 18 for small channel counts (factorial form),
// used as an oracle against the recursion.
double erlang_b_direct(double a, std::uint32_t c) {
  double numerator = 1.0;
  double denominator = 1.0;  // k = 0 term
  double term = 1.0;
  for (std::uint32_t k = 1; k <= c; ++k) {
    term *= a / static_cast<double>(k);
    denominator += term;
  }
  numerator = term;
  return numerator / denominator;
}

TEST(ErlangB, ZeroOfferedLoadNeverBlocks) {
  EXPECT_DOUBLE_EQ(erlang_b(0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_b(0.0, 5), 0.0);
}

TEST(ErlangB, ZeroOfferedLoadDominatesZeroChannels) {
  // Nothing arrives, so nothing blocks — even with no channels at all.
  // The recursion's B(0) = 1 base case must not leak out for the empty
  // (0, 0) system.
  EXPECT_DOUBLE_EQ(erlang_b(0.0, 0), 0.0);
}

TEST(ErlangB, ZeroChannelsAlwaysBlocks) {
  EXPECT_DOUBLE_EQ(erlang_b(1.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(erlang_b(100.0, 0), 1.0);
}

TEST(ErlangB, TextbookValues) {
  // B(a=1, c=1) = 1/(1+1) = 0.5
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
  // B(a=2, c=2) = (2^2/2!)/(1 + 2 + 2) = 2/5 = 0.4
  EXPECT_NEAR(erlang_b(2.0, 2), 0.4, 1e-12);
  // B(a=3, c=3) = (27/6)/(1+3+4.5+4.5) = 4.5/13 ~= 0.34615
  EXPECT_NEAR(erlang_b(3.0, 3), 4.5 / 13.0, 1e-12);
}

class ErlangGridTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint32_t>> {};

TEST_P(ErlangGridTest, RecursionMatchesDirectFormula) {
  const auto [a, c] = GetParam();
  EXPECT_NEAR(erlang_b(a, c), erlang_b_direct(a, c), 1e-10);
}

TEST_P(ErlangGridTest, ResultIsAProbability) {
  const auto [a, c] = GetParam();
  const double b = erlang_b(a, c);
  EXPECT_GE(b, 0.0);
  EXPECT_LE(b, 1.0);
}

TEST_P(ErlangGridTest, MonotoneDecreasingInChannels) {
  const auto [a, c] = GetParam();
  EXPECT_LE(erlang_b(a, c + 1), erlang_b(a, c) + 1e-15);
}

TEST_P(ErlangGridTest, MonotoneIncreasingInLoad) {
  const auto [a, c] = GetParam();
  EXPECT_GE(erlang_b(a + 0.5, c), erlang_b(a, c) - 1e-15);
}

INSTANTIATE_TEST_SUITE_P(
    LoadChannelGrid, ErlangGridTest,
    ::testing::Combine(::testing::Values(0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0),
                       ::testing::Values<std::uint32_t>(1, 2, 4, 8, 16, 32)));

TEST(ErlangB, StableForHugeInputs) {
  // The naive factorial form overflows near c ~ 170; the recursion must
  // not.
  const double b = erlang_b(900.0, 1000);
  EXPECT_GE(b, 0.0);
  EXPECT_LE(b, 1.0);
  EXPECT_LT(b, 0.05);  // heavily over-provisioned -> tiny blocking
}

TEST(ErlangBChannelsFor, InverseOfBlocking) {
  for (const double offered : {0.5, 2.0, 10.0}) {
    for (const double target : {0.1, 0.01, 0.001}) {
      const std::uint32_t c = erlang_b_channels_for(offered, target);
      EXPECT_LE(erlang_b(offered, c), target);
      if (c > 0) {
        EXPECT_GT(erlang_b(offered, c - 1), target);
      }
    }
  }
}

TEST(ErlangBChannelsFor, ZeroLoadNeedsNoChannels) {
  EXPECT_EQ(erlang_b_channels_for(0.0, 0.01), 0u);
}

TEST(ErlangC, KnownValues) {
  // M/M/2 with a = 1 Erlang: B = 0.2, rho = 0.5,
  // C = 0.2 / (1 - 0.5*0.8) = 1/3.
  EXPECT_NEAR(erlang_c(1.0, 2), 1.0 / 3.0, 1e-12);
  // Single server: C = rho (classic M/M/1 waiting probability).
  EXPECT_NEAR(erlang_c(0.4, 1), 0.4, 1e-12);
}

TEST(ErlangC, BoundariesAndInstability) {
  EXPECT_DOUBLE_EQ(erlang_c(0.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(erlang_c(4.0, 4), 1.0);   // rho = 1: saturated
  EXPECT_DOUBLE_EQ(erlang_c(10.0, 4), 1.0);  // overloaded
  EXPECT_DOUBLE_EQ(erlang_c(1.0, 0), 1.0);
}

TEST(ErlangC, AlwaysAtLeastErlangB) {
  // Waiting probability dominates loss probability at equal load.
  for (const double a : {0.5, 1.0, 3.0}) {
    for (const std::uint32_t c : {2u, 4u, 8u}) {
      if (a >= static_cast<double>(c)) continue;
      EXPECT_GE(erlang_c(a, c), erlang_b(a, c) - 1e-12);
    }
  }
}

TEST(ErlangC, ZeroOfferedLoadDominatesZeroChannels) {
  EXPECT_DOUBLE_EQ(erlang_c(0.0, 0), 0.0);
}

TEST(ErlangCMeanWait, ZeroOfferedLoadNeverWaits) {
  // The empty system: zero offered traffic waits zero service times,
  // regardless of the channel count — including the degenerate (0, 0)
  // system, where the stability test alone would claim an infinite wait.
  EXPECT_DOUBLE_EQ(erlang_c_mean_wait(0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_c_mean_wait(0.0, 4), 0.0);
}

TEST(ErlangCMeanWait, SaturationBoundaryIsInfinite) {
  // offered == channels is the first unstable point (rho = 1).
  EXPECT_TRUE(std::isinf(erlang_c_mean_wait(4.0, 4)));
  EXPECT_TRUE(std::isinf(erlang_c_mean_wait(1.0, 0)));
}

TEST(ErlangCMeanWait, MatchesMm1AndDiverges) {
  // M/M/1: W = rho / (1 - rho) service times.
  EXPECT_NEAR(erlang_c_mean_wait(0.5, 1), 1.0, 1e-12);
  EXPECT_TRUE(std::isinf(erlang_c_mean_wait(2.0, 2)));
  // More servers at equal load wait less.
  EXPECT_LT(erlang_c_mean_wait(1.8, 4), erlang_c_mean_wait(1.8, 2));
}

TEST(ErlangCMeanWait, StrictlyIncreasingBelowSaturation) {
  // Approaching the boundary from below the wait blows up monotonically;
  // the sentinel at the boundary is the limit of that growth, not a
  // discontinuous special case.
  double prev = 0.0;
  for (const double a : {1.0, 2.0, 3.0, 3.5, 3.9, 3.99}) {
    const double w = erlang_c_mean_wait(a, 4);
    EXPECT_GT(w, prev);
    EXPECT_FALSE(std::isinf(w));
    EXPECT_FALSE(std::isnan(w));
    prev = w;
  }
  EXPECT_GT(erlang_c_mean_wait(3.999999, 4), 1e4);
  EXPECT_TRUE(std::isinf(erlang_c_mean_wait(4.0, 4)));
}

TEST(ErlangMgcMeanWait, CvOneRecoversMm1) {
  // Exponential service (cv = 1) makes Allen-Cunneen exact: M/M/c.
  for (const double a : {0.3, 0.9, 1.7}) {
    for (const std::uint32_t c : {1u, 2u, 4u}) {
      if (a >= static_cast<double>(c)) continue;
      EXPECT_DOUBLE_EQ(erlang_mgc_mean_wait(a, c, 1.0),
                       erlang_c_mean_wait(a, c));
    }
  }
}

TEST(ErlangMgcMeanWait, DeterministicServiceHalvesTheWait) {
  // M/D/c (cv = 0) waits exactly half the M/M/c time under the
  // approximation.
  EXPECT_DOUBLE_EQ(erlang_mgc_mean_wait(0.5, 1, 0.0),
                   erlang_c_mean_wait(0.5, 1) / 2.0);
}

TEST(ErlangMgcMeanWait, HighVarianceInflatesTheWait) {
  // cv = 2 -> factor (1 + 4) / 2 = 2.5.
  EXPECT_NEAR(erlang_mgc_mean_wait(1.0, 2, 2.0),
              erlang_c_mean_wait(1.0, 2) * 2.5, 1e-12);
}

TEST(ErlangMgcMeanWait, SharesSentinelConventions) {
  // Zero offered load waits zero regardless of cv; saturation is
  // infinite for every cv, including the deterministic-service case
  // where the naive factor would be tempted to halve infinity.
  EXPECT_DOUBLE_EQ(erlang_mgc_mean_wait(0.0, 0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(erlang_mgc_mean_wait(0.0, 4, 3.0), 0.0);
  EXPECT_TRUE(std::isinf(erlang_mgc_mean_wait(4.0, 4, 0.0)));
  EXPECT_TRUE(std::isinf(erlang_mgc_mean_wait(4.0, 4, 1.0)));
  EXPECT_TRUE(std::isinf(erlang_mgc_mean_wait(1.0, 0, 2.0)));
}

TEST(ErlangBDeath, RejectsNegativeLoadAndBadTarget) {
  EXPECT_DEATH(erlang_b(-1.0, 3), "");
  EXPECT_DEATH(erlang_b_channels_for(1.0, 0.0), "");
  EXPECT_DEATH(erlang_b_channels_for(1.0, 1.5), "");
}

}  // namespace
}  // namespace rfh
