#include "check/mean_field.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/availability.h"
#include "harness/scenario.h"

namespace rfh {

namespace {

/// Binomial pmf row P(j deaths | k copies) for j = 0..k, computed with
/// the multiplicative recurrence C(k, j+1) = C(k, j) * (k-j)/(j+1) —
/// exactly the same doubles for every call site, so the chain is
/// deterministic across platforms that round identically.
void binomial_row(std::uint32_t k, double p, std::vector<double>& out) {
  out.assign(k + 1, 0.0);
  if (p <= 0.0) {
    out[0] = 1.0;
    return;
  }
  if (p >= 1.0) {
    out[k] = 1.0;
    return;
  }
  const double q = 1.0 - p;
  double coeff = 1.0;  // C(k, j)
  for (std::uint32_t j = 0; j <= k; ++j) {
    out[j] = coeff * std::pow(p, static_cast<double>(j)) *
             std::pow(q, static_cast<double>(k - j));
    coeff = coeff * static_cast<double>(k - j) / static_cast<double>(j + 1);
  }
}

double total_variation(std::span<const double> x, std::span<const double> y) {
  RFH_ASSERT(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += std::abs(x[i] - y[i]);
  return 0.5 * sum;
}

}  // namespace

MeanFieldParams MeanFieldParams::from_scenario(const Scenario& scenario,
                                               std::size_t n_servers) {
  RFH_ASSERT(n_servers > 0);
  MeanFieldParams params;
  params.failure_rate = scenario.sim.failure_rate;
  // availability_floor() dispatches on the redundancy mode: Eq. 14's
  // min_replicas for replica runs, the k-of-n fragment floor for EC runs,
  // so the oracle tracks the same target the engine repairs toward.
  params.r_target = scenario.sim.availability_floor();
  params.max_replicas = scenario.sim.max_replicas_per_partition;

  // Expected kills per epoch over the run horizon: crash events land once,
  // churn events kill `kill` servers every `period` epochs inside their
  // window. Zone/DC outages are placement-correlated and deliberately
  // excluded (see header).
  double kills = 0.0;
  const Epoch horizon = scenario.epochs > 0 ? scenario.epochs : 1;
  for (const FaultEvent& e : scenario.fault_plan.events()) {
    switch (e.kind) {
      case FaultKind::kCrash:
        if (e.at < horizon) {
          kills += static_cast<double>(
              e.servers.empty() ? e.count
                                : static_cast<std::uint32_t>(e.servers.size()));
        }
        break;
      case FaultKind::kChurn: {
        const Epoch end = std::min(e.until, horizon);
        if (end > e.at) {
          const Epoch span = end - e.at;
          const Epoch waves = (span + e.period - 1) / e.period;
          kills += static_cast<double>(e.kill) * static_cast<double>(waves);
        }
        break;
      }
      default:
        break;
    }
  }
  params.death_prob = std::min(
      1.0, kills / static_cast<double>(horizon) /
               static_cast<double>(n_servers));
  return params;
}

void mean_field_step(const MeanFieldParams& params,
                     std::span<const double> census,
                     std::vector<double>& out) {
  const std::uint32_t cap = params.max_replicas;
  RFH_ASSERT(census.size() == cap + 1);
  out.assign(cap + 1, 0.0);
  std::vector<double> deaths;
  for (std::uint32_t k = 0; k <= cap; ++k) {
    const double mass = census[k];
    if (mass == 0.0) continue;
    binomial_row(k, params.death_prob, deaths);
    for (std::uint32_t j = 0; j <= k; ++j) {
      const double m = mass * deaths[j];
      if (m == 0.0) continue;
      std::uint32_t s = k - j;
      if (s == 0) s = 1;  // reseed at the ring successor (data loss)
      if (s < params.r_target && s < cap) {
        // Eq. 14 repair: +1 with probability repair_prob.
        out[s + 1] += m * params.repair_prob;
        out[s] += m * (1.0 - params.repair_prob);
      } else {
        out[std::min(s, cap)] += m;
      }
    }
  }
}

MeanFieldPrediction predict_census(const MeanFieldParams& params) {
  RFH_ASSERT(params.max_replicas >= 1);
  RFH_ASSERT(params.death_prob >= 0.0 && params.death_prob <= 1.0);
  RFH_ASSERT(params.repair_prob >= 0.0 && params.repair_prob <= 1.0);

  MeanFieldPrediction prediction;
  std::vector<double> pi(params.max_replicas + 1, 0.0);
  pi[std::min(params.r_target, params.max_replicas)] = 1.0;

  std::vector<double> next;
  for (std::uint32_t it = 0; it < params.max_iterations; ++it) {
    mean_field_step(params, pi, next);
    const double step = total_variation(pi, next);
    pi.swap(next);
    ++prediction.iterations;
    if (step <= params.tolerance) {
      prediction.converged = true;
      break;
    }
  }

  prediction.census = std::move(pi);
  for (std::size_t k = 0; k < prediction.census.size(); ++k) {
    prediction.expected_replicas +=
        prediction.census[k] * static_cast<double>(k);
    prediction.expected_availability +=
        prediction.census[k] *
        availability(static_cast<std::uint32_t>(k), params.failure_rate);
  }
  return prediction;
}

MeanFieldPrediction predict_census(const Scenario& scenario,
                                   std::size_t n_servers) {
  return predict_census(MeanFieldParams::from_scenario(scenario, n_servers));
}

CensusComparison compare(std::span<const double> sim_census,
                         const MeanFieldPrediction& prediction,
                         double failure_rate) {
  const std::size_t bins = prediction.census.size();
  RFH_ASSERT(sim_census.size() <= bins);

  std::vector<double> sim(bins, 0.0);
  double total = 0.0;
  for (std::size_t k = 0; k < sim_census.size(); ++k) {
    RFH_ASSERT(sim_census[k] >= 0.0);
    total += sim_census[k];
  }
  if (total > 0.0) {
    for (std::size_t k = 0; k < sim_census.size(); ++k) {
      sim[k] = sim_census[k] / total;
    }
  }

  CensusComparison cmp;
  cmp.per_bin_error.resize(bins, 0.0);
  for (std::size_t k = 0; k < bins; ++k) {
    const double err = sim[k] - prediction.census[k];
    cmp.per_bin_error[k] = err;
    cmp.max_bin_error = std::max(cmp.max_bin_error, std::abs(err));
    cmp.sim_expected_replicas += sim[k] * static_cast<double>(k);
    cmp.sim_expected_availability +=
        sim[k] * availability(static_cast<std::uint32_t>(k), failure_rate);
  }
  cmp.total_variation = total_variation(sim, prediction.census);
  cmp.predicted_expected_replicas = prediction.expected_replicas;
  cmp.predicted_expected_availability = prediction.expected_availability;
  return cmp;
}

}  // namespace rfh
