#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.h"
#include "harness/runner.h"
#include "harness/scenario.h"

namespace rfh {
namespace {

TEST(Scenario, PaperFactoriesMatchTableOne) {
  const Scenario random_query = Scenario::paper_random_query();
  EXPECT_EQ(random_query.epochs, 250u);
  EXPECT_EQ(random_query.sim.partitions, 64u);
  EXPECT_EQ(random_query.sim.partition_size, kib(512));
  EXPECT_DOUBLE_EQ(random_query.sim.failure_rate, 0.1);
  EXPECT_DOUBLE_EQ(random_query.sim.min_availability, 0.8);
  EXPECT_DOUBLE_EQ(random_query.sim.alpha, 0.2);
  EXPECT_DOUBLE_EQ(random_query.sim.beta, 2.0);
  EXPECT_DOUBLE_EQ(random_query.sim.gamma, 1.5);
  EXPECT_DOUBLE_EQ(random_query.sim.delta, 0.2);
  EXPECT_DOUBLE_EQ(random_query.sim.mu, 1.0);
  EXPECT_DOUBLE_EQ(random_query.sim.storage_limit, 0.7);

  EXPECT_EQ(Scenario::paper_flash_crowd().epochs, 400u);
  EXPECT_EQ(Scenario::paper_flash_crowd().workload,
            WorkloadKind::kFlashCrowd);
  EXPECT_EQ(Scenario::paper_failure_recovery().epochs, 500u);
}

TEST(Scenario, MakePolicyProducesCorrectKinds) {
  EXPECT_EQ(make_policy(PolicyKind::kRequest)->name(), "Request");
  EXPECT_EQ(make_policy(PolicyKind::kOwner)->name(), "Owner");
  EXPECT_EQ(make_policy(PolicyKind::kRandom)->name(), "Random");
  EXPECT_EQ(make_policy(PolicyKind::kRfh)->name(), "RFH");
  EXPECT_EQ(policy_name(PolicyKind::kRfh), "RFH");
}

TEST(Scenario, MakeSimulationIsReadyToStep) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 3;
  auto sim = make_simulation(scenario, PolicyKind::kRfh);
  const EpochReport report = sim->step();
  EXPECT_GT(report.total_queries, 0.0);
  EXPECT_EQ(sim->policy_name(), "RFH");
}

TEST(Runner, SeriesHasOneEntryPerEpoch) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 20;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRandom);
  EXPECT_EQ(run.kind, PolicyKind::kRandom);
  EXPECT_EQ(run.series.size(), 20u);
}

TEST(Runner, ReproducibleAcrossInvocations) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 25;
  const PolicyRun a = run_policy(scenario, PolicyKind::kRfh);
  const PolicyRun b = run_policy(scenario, PolicyKind::kRfh);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].total_replicas, b.series[i].total_replicas);
    EXPECT_DOUBLE_EQ(a.series[i].utilization, b.series[i].utilization);
    EXPECT_DOUBLE_EQ(a.series[i].path_length, b.series[i].path_length);
  }
}

TEST(Runner, ComparisonCoversAllFourPolicies) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 10;
  const ComparativeResult result = run_comparison(scenario);
  ASSERT_EQ(result.runs.size(), 4u);
  EXPECT_EQ(result.run(PolicyKind::kRequest).kind, PolicyKind::kRequest);
  EXPECT_EQ(result.run(PolicyKind::kRfh).kind, PolicyKind::kRfh);
  for (const PolicyRun& run : result.runs) {
    EXPECT_EQ(run.series.size(), 10u);
  }
}

TEST(Runner, FailureEventsFireAtTheRequestedEpoch) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 30;
  FailureEvent event;
  event.epoch = 10;
  event.kill_random = 20;
  const PolicyRun run = run_policy(scenario, PolicyKind::kRfh, {event});
  EXPECT_EQ(run.killed.size(), 20u);
  // The copy census visibly drops at the failure epoch.
  EXPECT_LT(run.series[10].total_replicas, run.series[9].total_replicas);
}

TEST(Runner, RecoverEventRestoresServers) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 12;
  FailureEvent kill;
  kill.epoch = 2;
  kill.kill.push_back(ServerId{0});
  kill.kill.push_back(ServerId{1});
  FailureEvent recover;
  recover.epoch = 6;
  recover.recover.push_back(ServerId{0});
  recover.recover.push_back(ServerId{1});
  const PolicyRun run =
      run_policy(scenario, PolicyKind::kRfh, {kill, recover});
  EXPECT_EQ(run.series.size(), 12u);
}

TEST(Report, PrintFigureEmitsCsvAndSummary) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 8;
  const ComparativeResult result = run_comparison(scenario);
  std::ostringstream out;
  print_figure(out, "test figure", result, &EpochMetrics::utilization, 4);
  const std::string text = out.str();
  EXPECT_NE(text.find("# test figure"), std::string::npos);
  EXPECT_NE(text.find("epoch,Request,Owner,Random,RFH"), std::string::npos);
  EXPECT_NE(text.find("# tail-mean(last 4 epochs):"), std::string::npos);

  std::ostringstream out2;
  print_figure_u32(out2, "counter figure", result,
                   &EpochMetrics::total_replicas, 4);
  EXPECT_NE(out2.str().find("counter figure"), std::string::npos);
}

TEST(Runner, ParallelComparisonMatchesSequentialBitForBit) {
  Scenario scenario = Scenario::paper_random_query();
  scenario.epochs = 30;
  const ComparativeResult parallel = run_comparison(scenario);
  const ComparativeResult sequential = run_comparison_sequential(scenario);
  ASSERT_EQ(parallel.runs.size(), sequential.runs.size());
  for (std::size_t r = 0; r < parallel.runs.size(); ++r) {
    const PolicyRun& a = parallel.runs[r];
    const PolicyRun& b = sequential.runs[r];
    ASSERT_EQ(a.kind, b.kind);
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t e = 0; e < a.series.size(); ++e) {
      EXPECT_EQ(a.series[e].total_replicas, b.series[e].total_replicas);
      EXPECT_DOUBLE_EQ(a.series[e].utilization, b.series[e].utilization);
      EXPECT_DOUBLE_EQ(a.series[e].replication_cost_total,
                       b.series[e].replication_cost_total);
      EXPECT_DOUBLE_EQ(a.series[e].path_length, b.series[e].path_length);
    }
  }
}

TEST(Report, TailMeanAveragesTheTail) {
  PolicyRun run;
  run.series.resize(4);
  run.series[0].path_length = 100.0;
  run.series[1].path_length = 1.0;
  run.series[2].path_length = 2.0;
  run.series[3].path_length = 3.0;
  EXPECT_DOUBLE_EQ(tail_mean(run, &EpochMetrics::path_length, 3), 2.0);
  EXPECT_DOUBLE_EQ(tail_mean(run, &EpochMetrics::path_length, 100), 26.5);
}

}  // namespace
}  // namespace rfh
