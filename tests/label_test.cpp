#include "topology/label.h"

#include <gtest/gtest.h>

namespace rfh {
namespace {

NodeLabel make(const char* dc, const char* room, const char* rack,
               const char* server) {
  return NodeLabel{"NA", "USA", dc, room, rack, server};
}

TEST(NodeLabel, ToStringMatchesPaperFormat) {
  const NodeLabel l{"NA", "USA", "GA1", "C01", "R02", "S5"};
  EXPECT_EQ(l.to_string(), "NA-USA-GA1-C01-R02-S5");
}

TEST(NodeLabel, ParseRoundTrip) {
  const char* text = "AS-JPN-TY1-C01-R02-S3";
  const NodeLabel l = parse_label(text);
  EXPECT_EQ(l.continent, "AS");
  EXPECT_EQ(l.country, "JPN");
  EXPECT_EQ(l.datacenter, "TY1");
  EXPECT_EQ(l.room, "C01");
  EXPECT_EQ(l.rack, "R02");
  EXPECT_EQ(l.server, "S3");
  EXPECT_EQ(l.to_string(), text);
}

TEST(NodeLabelDeath, MalformedInputs) {
  EXPECT_DEATH(parse_label("NA-USA-GA1-C01-R02"), "");       // too few
  EXPECT_DEATH(parse_label("NA-USA-GA1-C01-R02-S5-X"), "");  // too many
  EXPECT_DEATH(parse_label("NA--GA1-C01-R02-S5"), "");       // empty part
  EXPECT_DEATH(parse_label(""), "");
}

TEST(AvailabilityLevel, SameServerIsLevelOne) {
  const NodeLabel a = make("GA1", "C01", "R01", "S1");
  EXPECT_EQ(availability_level(a, a), 1u);
}

TEST(AvailabilityLevel, SameRackDifferentServer) {
  EXPECT_EQ(availability_level(make("GA1", "C01", "R01", "S1"),
                               make("GA1", "C01", "R01", "S2")),
            2u);
}

TEST(AvailabilityLevel, SameRoomDifferentRack) {
  EXPECT_EQ(availability_level(make("GA1", "C01", "R01", "S1"),
                               make("GA1", "C01", "R02", "S1")),
            3u);
}

TEST(AvailabilityLevel, SameDatacenterDifferentRoom) {
  EXPECT_EQ(availability_level(make("GA1", "C01", "R01", "S1"),
                               make("GA1", "C02", "R01", "S1")),
            4u);
}

TEST(AvailabilityLevel, DifferentDatacenter) {
  EXPECT_EQ(availability_level(make("GA1", "C01", "R01", "S1"),
                               make("NY1", "C01", "R01", "S1")),
            5u);
}

TEST(AvailabilityLevel, DifferentCountryOrContinentIsStillLevelFive) {
  const NodeLabel a{"NA", "USA", "GA1", "C01", "R01", "S1"};
  const NodeLabel b{"AS", "JPN", "TY1", "C01", "R01", "S1"};
  EXPECT_EQ(availability_level(a, b), 5u);
}

TEST(AvailabilityLevel, IsSymmetric) {
  const NodeLabel a = make("GA1", "C01", "R01", "S1");
  const NodeLabel b = make("GA1", "C02", "R03", "S4");
  EXPECT_EQ(availability_level(a, b), availability_level(b, a));
}

TEST(AvailabilityLevel, SameDatacenterNameDifferentCountryIsLevelFive) {
  // Two datacenters that happen to share a short name in different
  // countries are distinct failure domains.
  const NodeLabel a{"NA", "USA", "DC1", "C01", "R01", "S1"};
  const NodeLabel b{"NA", "CAN", "DC1", "C01", "R01", "S1"};
  EXPECT_EQ(availability_level(a, b), 5u);
}

}  // namespace
}  // namespace rfh
