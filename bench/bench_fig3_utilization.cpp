// Fig. 3 — replica utilization rate.
//   (a) under random (uniform) query, 250 epochs;
//   (b) under flash crowd, 400 epochs.
//
// Paper shape: RFH highest, then request-oriented, then owner-oriented,
// random lowest; under flash crowd the request-oriented curve collapses
// at the first stage switch (epoch 100) and recovers only partially,
// while RFH dips once and re-adapts quickly.
#include <iostream>

#include "harness/report.h"

int main() {
  {
    const rfh::Scenario s = rfh::Scenario::paper_random_query();
    const rfh::ComparativeResult r = rfh::run_comparison(s);
    rfh::print_figure(std::cout, "Fig 3(a): replica utilization, random query",
                      r, &rfh::EpochMetrics::utilization);
  }
  {
    const rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
    const rfh::ComparativeResult r = rfh::run_comparison(s);
    rfh::print_figure(std::cout, "Fig 3(b): replica utilization, flash crowd",
                      r, &rfh::EpochMetrics::utilization);
  }
  return 0;
}
