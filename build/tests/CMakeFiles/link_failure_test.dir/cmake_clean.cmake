file(REMOVE_RECURSE
  "CMakeFiles/link_failure_test.dir/link_failure_test.cpp.o"
  "CMakeFiles/link_failure_test.dir/link_failure_test.cpp.o.d"
  "link_failure_test"
  "link_failure_test.pdb"
  "link_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
