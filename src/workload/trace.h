// Trace capture and replay.
//
// Every workload generator can be wrapped in a RecordingWorkload to
// capture the exact demand stream of a run; the capture serializes to a
// simple CSV (epoch,partition,requester,queries) and replays through
// TraceWorkload. This is how experiments move between machines (and how
// a production query log would be fed to the simulator: convert to the
// same CSV).
#pragma once

#include <istream>
#include <memory>
#include <ostream>
#include <span>
#include <vector>

#include "workload/generator.h"

namespace rfh {

/// Replays a recorded per-epoch demand schedule; epochs beyond the end of
/// the trace produce no demand.
class TraceWorkload final : public WorkloadGenerator {
 public:
  explicit TraceWorkload(std::vector<QueryBatch> epochs)
      : epochs_(std::move(epochs)) {}

  /// Parse "epoch,partition,requester,queries" CSV (header optional,
  /// blank lines and '#' comments ignored). Epoch numbers may be sparse;
  /// missing epochs replay as empty. Aborts on malformed rows.
  static TraceWorkload from_csv(std::istream& in);

  [[nodiscard]] QueryBatch generate(Epoch epoch, Rng& rng) override;

  [[nodiscard]] std::size_t epoch_count() const noexcept {
    return epochs_.size();
  }

 private:
  std::vector<QueryBatch> epochs_;
};

/// Serialize a demand schedule as trace CSV (with header).
void write_trace_csv(std::ostream& out,
                     std::span<const QueryBatch> epochs);

/// Wraps another generator and records everything it emits.
class RecordingWorkload final : public WorkloadGenerator {
 public:
  explicit RecordingWorkload(std::unique_ptr<WorkloadGenerator> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] QueryBatch generate(Epoch epoch, Rng& rng) override;

  [[nodiscard]] std::span<const QueryBatch> recorded() const noexcept {
    return recorded_;
  }

 private:
  std::unique_ptr<WorkloadGenerator> inner_;
  std::vector<QueryBatch> recorded_;
};

}  // namespace rfh
