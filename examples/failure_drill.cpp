// Failure drill (paper Fig. 10 and Section III-G, extended): run RFH
// under uniform load, then throw the paper's whole failure taxonomy at
// it — a mass server kill, a network (link) failure, and a full
// datacenter disaster — recovering each in turn. Watch the copy count
// crater and rebuild, and the unserved fraction spike and decay.
//
//   $ ./failure_drill
#include <cstdio>

#include "harness/runner.h"
#include "harness/scenario.h"

int main() {
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  scenario.epochs = 400;

  auto sim = rfh::make_simulation(scenario, rfh::PolicyKind::kRfh);
  const rfh::DatacenterId tokyo = sim->world().by_letter('I');
  const rfh::DatacenterId vancouver = sim->world().by_letter('D');
  const rfh::DatacenterId zurich = sim->world().by_letter('F');

  std::vector<rfh::ServerId> victims;
  std::vector<rfh::ServerId> disaster;
  for (rfh::Epoch e = 0; e < scenario.epochs; ++e) {
    switch (e) {
      case 100:
        victims = sim->fail_random_servers(30);
        std::printf("-- epoch 100: killed 30 random servers (%u live)\n",
                    sim->cluster().live_server_count());
        break;
      case 170:
        sim->recover_servers(victims);
        std::printf("-- epoch 170: recovered them (%u live)\n",
                    sim->cluster().live_server_count());
        break;
      case 200:
        sim->fail_link(tokyo, vancouver);
        std::printf("-- epoch 200: trans-Pacific link I-D down "
                    "(Asia reroutes via Beijing/Zurich)\n");
        break;
      case 260:
        sim->restore_link(tokyo, vancouver);
        std::printf("-- epoch 260: link I-D restored\n");
        break;
      case 300:
        disaster = sim->fail_datacenter(zurich);
        std::printf("-- epoch 300: datacenter F (Zurich) destroyed "
                    "(%zu servers)\n",
                    disaster.size());
        break;
      case 360:
        sim->recover_servers(disaster);
        std::printf("-- epoch 360: Zurich rebuilt\n");
        break;
      default:
        break;
    }
    const rfh::EpochReport report = sim->step();
    if (e % 20 == 0 || e == 100 || e == 101 || e == 300 || e == 301) {
      std::printf("epoch %3u: %3u replicas, %2u data losses, "
                  "unserved %.1f%%\n",
                  report.epoch, report.total_replicas, sim->data_losses(),
                  report.total_queries > 0.0
                      ? 100.0 * report.unserved_queries / report.total_queries
                      : 0.0);
    }
  }
  sim->cluster().check_invariants();
  std::printf("final: %u replicas on %u live servers, %u data losses\n",
              sim->cluster().total_replicas(),
              sim->cluster().live_server_count(), sim->data_losses());
  return 0;
}
