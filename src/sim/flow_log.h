// Observational per-flow segment log for the streaming load subsystem.
//
// The engine's propagate() (engine.cpp) absorbs each (partition,
// requester) flow into replicas along its route as aggregate per-epoch
// query counts. The stream subsystem (src/stream/) needs to know *where*
// each slice of a flow landed — which server, in which datacenter, with
// what one-way routing latency — so it can disaggregate the batch into
// timestamped arrivals and queue them at the serving server.
//
// When a FlowLog is attached (Simulation::set_flow_log) the engine
// records one FlowSegment per absorption decision, in the exact
// deterministic order propagate() makes them. Recording is purely
// observational: it never touches simulation state or any RNG stream, so
// attaching a log cannot change a single byte of a run (locked down by
// tests/stream_test.cpp).
#pragma once

#include <vector>

#include "common/ids.h"

namespace rfh {

/// One absorption (or rejection) decision for a slice of a query flow.
struct FlowSegment {
  PartitionId partition;
  DatacenterId requester;
  /// Serving server; invalid() means the slice was not served (blocked
  /// residual or lost-primary flow).
  ServerId server;
  /// Datacenter of `server`, or the requester DC for unserved slices.
  DatacenterId dc;
  double queries = 0.0;
  /// One-way routing latency for this slice, in ms. Blocked residuals
  /// carry route latency + blocked_penalty_ms (the same sample batch mode
  /// feeds its latency histogram). Negative means "no latency sample":
  /// lost-primary flows, which batch mode counts as unserved without
  /// sampling latency at all.
  double latency_ms = 0.0;
};

/// Append-only segment buffer, cleared by the engine at the start of each
/// propagate() so it always holds exactly the current epoch's segments.
class FlowLog {
 public:
  void clear() noexcept { segments_.clear(); }
  void add(const FlowSegment& segment) { segments_.push_back(segment); }
  [[nodiscard]] const std::vector<FlowSegment>& segments() const noexcept {
    return segments_;
  }

 private:
  std::vector<FlowSegment> segments_;
};

}  // namespace rfh
