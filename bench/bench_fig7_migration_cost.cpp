// Fig. 7 — migration cost (Eq. 1 with migration bandwidth, cumulative).
//   (a) total, random query            (b) average per migration, random
//   (c) total, flash crowd             (d) average per migration, flash
//
// Paper shape: request-oriented pays the most (long-haul moves towards
// requesters); random and owner-oriented pay zero; RFH pays little; all
// migration costs rise under flash crowd versus random query.
#include <iostream>

#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  {
    const rfh::Scenario s = rfh::Scenario::paper_random_query();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure(std::cout,
                      "Fig 7(a): total migration cost, random query", r,
                      &rfh::EpochMetrics::migration_cost_total);
    rfh::print_figure(std::cout, "Fig 7(b): avg migration cost, random query",
                      r, &rfh::EpochMetrics::migration_cost_avg);
  }
  {
    const rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure(std::cout,
                      "Fig 7(c): total migration cost, flash crowd", r,
                      &rfh::EpochMetrics::migration_cost_total);
    rfh::print_figure(std::cout, "Fig 7(d): avg migration cost, flash crowd",
                      r, &rfh::EpochMetrics::migration_cost_avg);
  }
  return 0;
}
