// Consistent-hashing ring with virtual nodes (paper Section II-B).
//
// "The partitioning scheme of RFH is built using a variant of consistent
// hashing. A ring topology is employed as the output range of a hash
// function. Each node is assigned a random value within the hashing space
// to represent its position."
//
// Each physical server owns `tokens` positions (virtual-node tokens) on a
// 64-bit ring. A partition's primary owner is the server owning the first
// token clockwise from the partition's hash; Dynamo-style replica chains
// are the next distinct servers clockwise. Join and departure move only
// the keyspace adjacent to the affected tokens, which the tests verify
// quantitatively.
//
// Storage layout: the ring is a flat array of (position, owner) entries
// kept sorted by position, so a lookup is one binary search over
// contiguous memory instead of a std::map node walk (membership changes
// are epoch-granular and rare; lookups are the hot path). Each token
// additionally carries a lazily built successor list — the distinct
// servers met walking clockwise from it — so preference_list is a slice
// copy after the first query per token. Both caches are invalidated as a
// whole whenever membership changes (the "membership epoch" bump); the
// results are defined to be byte-identical to the map-walk seed
// implementation, which tests/property_test.cpp checks against a
// std::map reference under randomized add/remove interleavings.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/assert.h"
#include "common/ids.h"

namespace rfh {

class HashRing {
 public:
  /// tokens: virtual-node positions created per server (Dynamo's "number
  /// of virtual nodes" knob; more tokens -> smoother key distribution).
  explicit HashRing(std::uint32_t tokens_per_server = 16);

  void add_server(ServerId server);
  /// Bulk join: hash every token up front, sort once and merge — O(T log
  /// T) for T new tokens instead of the O(T²) sorted-insert loop, which
  /// is what makes 100k-server construction tractable. Produces the same
  /// ring as calling add_server per server: positions are pure hashes,
  /// and on the (astronomically unlikely) token collision the bulk path
  /// falls back to the incremental one so the linear-probe semantics stay
  /// authoritative.
  void add_servers(std::span<const ServerId> servers);
  void remove_server(ServerId server);
  /// Bulk leave: collect every victim token, then compact the ring in a
  /// single pass — O(R + T) for a ring of R tokens instead of the O(R)
  /// vector erase *per token* that sequential remove_server costs, which
  /// is what makes mass churn (2% of a 100k-server fleet per epoch)
  /// tractable. Produces exactly the ring sequential removals would.
  void remove_servers(std::span<const ServerId> servers);
  [[nodiscard]] bool contains(ServerId server) const;

  /// The server owning the first token at or clockwise after `key`.
  [[nodiscard]] ServerId primary(std::uint64_t key) const;

  /// Up to `n` *distinct* servers starting at the primary and walking
  /// clockwise (the Dynamo preference list for the key).
  [[nodiscard]] std::vector<ServerId> preference_list(std::uint64_t key,
                                                      std::size_t n) const;

  /// Stream the key's preference order — the same distinct-server
  /// clockwise walk preference_list slices — into `fn` without
  /// materializing or caching it. `fn` returns false to stop the walk.
  /// Callers that stop after a few candidates (replica seeding, loss
  /// repair) pay O(tokens scanned) instead of the full O(ring · servers)
  /// dedup walk, which is what keeps those paths flat at 100k servers.
  template <typename Fn>
  void for_each_preference(std::uint64_t key, Fn&& fn) const {
    RFH_ASSERT_MSG(!ring_.empty(), "ring is empty");
    const std::size_t slot = successor_slot(key);
    std::vector<ServerId> seen;  // tiny in practice: callers stop early
    seen.reserve(8);
    for (std::size_t step = 0; step < ring_.size(); ++step) {
      const ServerId candidate = ring_[(slot + step) % ring_.size()].owner;
      if (std::find(seen.begin(), seen.end(), candidate) != seen.end()) {
        continue;
      }
      seen.push_back(candidate);
      if (!fn(candidate)) return;
      if (seen.size() == server_tokens_.size()) return;
    }
  }

  /// Primary owner for a partition id.
  [[nodiscard]] ServerId partition_owner(PartitionId partition) const;

  [[nodiscard]] std::size_t server_count() const noexcept {
    return server_tokens_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return ring_.empty(); }

  /// Bumped on every add_server/remove_server; consumers caching derived
  /// placement (route memos, successor snapshots) compare epochs to know
  /// when to rebuild.
  [[nodiscard]] std::uint64_t membership_epoch() const noexcept {
    return membership_epoch_;
  }

  /// Hash position used for a partition (exposed for tests).
  [[nodiscard]] static std::uint64_t partition_key(PartitionId partition);

 private:
  struct Token {
    std::uint64_t position = 0;
    ServerId owner;
  };

  /// Index of the first token at or after `key`, wrapping to 0 past the
  /// end. Ring must be non-empty.
  [[nodiscard]] std::size_t successor_slot(std::uint64_t key) const;
  [[nodiscard]] bool has_token_at(std::uint64_t position) const;
  /// The slot's distinct-server clockwise walk, built on first use after
  /// a membership change.
  [[nodiscard]] const std::vector<ServerId>& successors_of(
      std::size_t slot) const;

  std::uint32_t tokens_per_server_;
  std::vector<Token> ring_;  // sorted by position
  std::unordered_map<ServerId, std::vector<std::uint64_t>> server_tokens_;
  std::uint64_t membership_epoch_ = 0;
  /// successor_cache_[slot] is empty until queried (a ring with servers
  /// always has at least one distinct successor, so empty == not built).
  mutable std::vector<std::vector<ServerId>> successor_cache_;
};

}  // namespace rfh
