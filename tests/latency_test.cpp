// The latency model end to end: route latencies, per-epoch histograms,
// and the SLA attainment metric.
#include <gtest/gtest.h>

#include <memory>

#include "metrics/collector.h"
#include "test_util.h"

namespace rfh {
namespace {

constexpr double kCap = 2.0;

TEST(Latency, RouteLatencyGrowsWithHopsAndDistance) {
  const World world = build_paper_world();
  const DcGraph graph(world.topology.datacenter_count(), world.links);
  const ShortestPaths paths(graph);
  const Router router(world.topology, paths);
  std::vector<std::vector<ServerId>> live(world.topology.datacenter_count());
  for (const Server& s : world.topology.servers()) {
    live[s.datacenter.value()].push_back(s.id);
  }
  const ServerId holder = world.topology.servers_in(world.by_letter('A'))[0];

  const Route local =
      router.route(PartitionId{0}, world.by_letter('A'), holder, live);
  const Route remote =
      router.route(PartitionId{0}, world.by_letter('J'), holder, live);
  // Local query: entry + descent switching only (no fibre distance).
  EXPECT_NEAR(local.total_latency_ms, 2.0 * kHopLatencyMs, 1e-9);
  // Remote query pays fibre propagation: Osaka->Atlanta is > 10000 km.
  EXPECT_GT(remote.total_latency_ms, 10000.0 / kFibreKmPerMs);
  // Stage latencies are nondecreasing along the route.
  for (std::size_t i = 1; i < remote.stages.size(); ++i) {
    EXPECT_GE(remote.stages[i].latency_ms, remote.stages[i - 1].latency_ms);
  }
  EXPECT_GT(remote.total_latency_ms, remote.stages.back().latency_ms);
}

TEST(Latency, ServedQueriesRecordAbsorptionLatency) {
  SimConfig config;
  config.partitions = 1;
  const PartitionId p{0};
  auto sim = test::make_fixed_sim({QueryFlow{p, DatacenterId{1}, 1.0}},
                                  std::make_unique<test::NullPolicy>(),
                                  config, test::uniform_world_options(kCap));
  sim->step();
  const Histogram& latency = sim->traffic().latency();
  EXPECT_DOUBLE_EQ(latency.total_weight(), 1.0);
  EXPECT_GT(latency.mean(), 0.0);
  // One query fully served by the primary: latency well under the
  // blocked penalty.
  EXPECT_LT(latency.mean(), sim->config().blocked_penalty_ms);
}

TEST(Latency, BlockedQueriesPayThePenalty) {
  SimConfig config;
  config.partitions = 1;
  const PartitionId p{0};
  // Demand 10 against capacity 2: 8 blocked queries at penalty latency.
  auto sim = test::make_fixed_sim({QueryFlow{p, DatacenterId{1}, 10.0}},
                                  std::make_unique<test::NullPolicy>(),
                                  config, test::uniform_world_options(kCap));
  sim->step();
  const Histogram& latency = sim->traffic().latency();
  EXPECT_DOUBLE_EQ(latency.total_weight(), 10.0);
  EXPECT_GT(latency.percentile(0.9), config.blocked_penalty_ms);
  // 2 of 10 served within SLA, 8 blocked.
  EXPECT_NEAR(latency.fraction_at_or_below(config.sla_target_ms), 0.2, 0.02);
}

TEST(Latency, NearbyReplicaCutsLatency) {
  SimConfig config;
  config.partitions = 1;
  const PartitionId p{0};
  auto probe = test::make_fixed_sim({}, std::make_unique<test::NullPolicy>(),
                                    config, test::uniform_world_options(kCap));
  const ServerId holder = probe->cluster().primary_of(p);
  const DatacenterId holder_dc = probe->topology().server(holder).datacenter;
  DatacenterId requester;
  double best = -1.0;
  for (const Datacenter& dc : probe->topology().datacenters()) {
    const double d = probe->topology().distance_km(dc.id, holder_dc);
    if (d > best) {
      best = d;
      requester = dc.id;  // farthest requester
    }
  }
  const ServerId target = probe->topology().servers_in(requester).front();

  Actions e0;
  e0.replications.push_back(ReplicateAction{p, target, {}});
  auto sim = test::make_fixed_sim(
      {QueryFlow{p, requester, 2.0}},
      std::make_unique<test::ScriptedPolicy>(std::vector<Actions>{e0}),
      config, test::uniform_world_options(kCap));
  sim->step();
  const double before = sim->traffic().latency().mean();
  sim->step();
  const double after = sim->traffic().latency().mean();
  EXPECT_LT(after, before / 2.0);  // absorbed at the requester's doorstep
}

TEST(Latency, CollectorExposesPercentilesAndSla) {
  SimConfig config;
  config.partitions = 4;
  WorkloadParams params;
  params.partitions = 4;
  params.datacenters = 10;
  auto sim = std::make_unique<Simulation>(
      build_paper_world(), config, std::make_unique<UniformWorkload>(params),
      std::make_unique<test::NullPolicy>());
  MetricsCollector collector;
  for (int e = 0; e < 5; ++e) {
    const EpochReport report = sim->step();
    const EpochMetrics m = collector.collect(*sim, report);
    EXPECT_GE(m.latency_p50_ms, 0.0);
    EXPECT_LE(m.latency_p50_ms, m.latency_p99_ms);
    EXPECT_LE(m.latency_p99_ms, m.latency_p999_ms + 1e-9);
    EXPECT_GE(m.sla_attainment, 0.0);
    EXPECT_LE(m.sla_attainment, 1.0);
    EXPECT_GT(m.latency_mean_ms, 0.0);
  }
}

}  // namespace
}  // namespace rfh
