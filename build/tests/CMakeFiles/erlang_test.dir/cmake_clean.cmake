file(REMOVE_RECURSE
  "CMakeFiles/erlang_test.dir/erlang_test.cpp.o"
  "CMakeFiles/erlang_test.dir/erlang_test.cpp.o.d"
  "erlang_test"
  "erlang_test.pdb"
  "erlang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erlang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
