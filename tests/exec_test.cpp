// ThreadPool and SweepRunner unit tests (src/exec/): task ordering,
// exception propagation, nested submit-and-wait, inline-pool equivalence
// and sweep plumbing. The byte-level parallel-vs-serial differential
// suite lives in tests/determinism_test.cpp.
#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/sweep.h"
#include "telemetry/registry.h"

namespace rfh {
namespace {

TEST(ThreadPoolTest, SingleWorkerRunsExternalTasksInSubmissionOrder) {
  // External submissions land in the FIFO injector; one worker must
  // consume them in order.
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mutex;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&, i] {
      const std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    }));
  }
  for (auto& f : futures) pool.wait(f);
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, AllTasksExecuteAcrossManyWorkers) {
  ThreadPool pool(8);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&done] {
      done.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) pool.wait(f);
  EXPECT_EQ(done.load(), 500);
  EXPECT_EQ(pool.stats().executed, 500u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFutureNotWorker) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("cell exploded");
  });
  EXPECT_THROW((void)pool.wait(bad), std::runtime_error);
  // The worker survived the throw and keeps executing tasks.
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(pool.wait(good), 7);
}

TEST(ThreadPoolTest, NestedSubmitAndWaitDoesNotDeadlock) {
  // A task that submits a subtask and waits on it would deadlock a
  // naive 1-thread pool; wait() executes pending tasks while waiting.
  ThreadPool pool(1);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 21; });
    return 2 * pool.wait(inner);
  });
  EXPECT_EQ(pool.wait(outer), 42);
}

TEST(ThreadPoolTest, DeeplyNestedSubmitsComplete) {
  ThreadPool pool(2);
  std::function<int(int)> spawn = [&](int depth) -> int {
    if (depth == 0) return 1;
    auto child = pool.submit([&spawn, depth] { return spawn(depth - 1); });
    return 1 + pool.wait(child);
  };
  auto root = pool.submit([&spawn] { return spawn(16); });
  EXPECT_EQ(pool.wait(root), 17);
}

TEST(ThreadPoolTest, InlinePoolRunsOnTheCallingThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const std::thread::id caller = std::this_thread::get_id();
  auto future = pool.submit([caller] {
    return std::this_thread::get_id() == caller;
  });
  EXPECT_TRUE(pool.wait(future));
  EXPECT_EQ(pool.stats().executed, 1u);
}

TEST(ThreadPoolTest, InlinePoolPropagatesExceptions) {
  ThreadPool pool(0);
  auto future = pool.submit([]() -> int { throw std::logic_error("boom"); });
  EXPECT_THROW((void)future.get(), std::logic_error);
}

TEST(ThreadPoolTest, WaitIdleDrainsEverything) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    (void)pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&done] { done.fetch_add(1); });
    }
  }  // ~ThreadPool joins after draining
  EXPECT_EQ(done.load(), 50);
}

// ---------------------------------------------------------------------
// SweepRunner plumbing (cell identity, collection, telemetry). The
// bit-identity guarantees are covered in determinism_test.cpp.

std::vector<SweepCell> small_grid() {
  std::vector<SweepCell> cells;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    for (const PolicyKind kind : {PolicyKind::kOwner, PolicyKind::kRfh}) {
      SweepCell cell;
      cell.label = "seed" + std::to_string(seed);
      cell.scenario = Scenario::paper_random_query();
      cell.scenario.epochs = 10;
      cell.scenario.sim.seed = seed;
      cell.scenario.world.seed = seed;
      cell.policy = kind;
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

TEST(SweepRunnerTest, ResultsArriveInCellIndexOrderWithIdentity) {
  SweepOptions options;
  options.jobs = 4;
  const std::vector<SweepCell> cells = small_grid();
  const std::vector<SweepCellResult> results = SweepRunner(options).run(cells);
  ASSERT_EQ(results.size(), cells.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].label, cells[i].label);
    EXPECT_EQ(results[i].policy, cells[i].policy);
    EXPECT_EQ(results[i].seed, cells[i].scenario.sim.seed);
    EXPECT_EQ(results[i].run.series.size(), cells[i].scenario.epochs);
  }
}

TEST(SweepRunnerTest, CollectionTogglesMetricsAndTraces) {
  std::vector<SweepCell> cells = small_grid();
  cells.resize(2);

  SweepOptions off;
  for (const SweepCellResult& r : SweepRunner(off).run(cells)) {
    EXPECT_TRUE(r.metrics_json.empty());
    EXPECT_TRUE(r.trace_jsonl.empty());
  }

  SweepOptions on;
  on.jobs = 2;
  on.collect_metrics = true;
  on.collect_traces = true;
  for (const SweepCellResult& r : SweepRunner(on).run(cells)) {
    EXPECT_NE(r.metrics_json.find("rfh-metrics/1"), std::string::npos);
    EXPECT_FALSE(r.trace_jsonl.empty());
  }
}

TEST(SweepRunnerTest, SweepTelemetryCountsCellsAndPoolWork) {
  MetricRegistry registry;
  SweepOptions options;
  options.jobs = 3;
  options.registry = &registry;
  const std::vector<SweepCell> cells = small_grid();
  (void)SweepRunner(options).run(cells);
  EXPECT_EQ(registry.counter("rfh_sweep_cells_total").value(),
            static_cast<double>(cells.size()));
  EXPECT_EQ(registry.counter("rfh_pool_tasks_executed_total").value(),
            static_cast<double>(cells.size()));
  EXPECT_EQ(registry.gauge("rfh_sweep_jobs").value(), 3.0);
}

TEST(SweepRunnerTest, EffectiveJobsResolvesZeroToHardware) {
  SweepOptions zero;
  zero.jobs = 0;
  EXPECT_GE(SweepRunner(zero).effective_jobs(), 1u);
  SweepOptions eight;
  eight.jobs = 8;
  EXPECT_EQ(SweepRunner(eight).effective_jobs(), 8u);
}

}  // namespace
}  // namespace rfh
