file(REMOVE_RECURSE
  "librfh_topology.a"
)
