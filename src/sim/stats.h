// Exponentially smoothed traffic statistics (paper Eqs. 9-11).
//
// All policies observe the cluster through these smoothed series:
//   q_bar_i   — per-partition system average query (Eq. 9 averaged over
//               requesters, smoothed by Eq. 10);
//   tr_bar_ik — per-(partition, server) traffic load (Eq. 11);
//   per-(partition, requester) query volume (used by the
//               request-oriented comparator);
//   per-server arrival rate (Erlang-B's lambda, Eq. 18).
#pragma once

#include <cstddef>
#include <vector>

#include "common/ids.h"
#include "sim/traffic.h"
#include "workload/generator.h"

namespace rfh {

class TrafficStats {
 public:
  /// `alpha_weights_history`: Eq. 10's printed orientation (see
  /// SimConfig::alpha_weights_history).
  TrafficStats(std::size_t partitions, std::size_t servers,
               std::size_t datacenters, double alpha,
               bool alpha_weights_history = true);

  /// Fold in one epoch of raw observations.
  void update(const EpochTraffic& traffic);

  /// Forget everything about a failed server. Without this, the
  /// exponentially decaying tr_bar entries of dead servers keep inflating
  /// Eq. 17's numerator while mean_node_traffic() divides by the *live*
  /// server count, skewing the migration-benefit test (Eq. 16) for many
  /// epochs after a failure. Called by the engine when a server dies.
  void clear_server(ServerId s);

  /// q_bar_i: smoothed system average query for partition p — the paper
  /// divides the partition's total demand by the number of requesters N.
  [[nodiscard]] double avg_query(PartitionId p) const;

  /// tr_bar_ik: smoothed traffic load of server s for partition p.
  [[nodiscard]] double node_traffic(PartitionId p, ServerId s) const;

  /// Smoothed queries for p issued near datacenter j.
  [[nodiscard]] double requester_queries(PartitionId p, DatacenterId j) const;

  /// Smoothed per-server arrival rate (queries touched per epoch).
  [[nodiscard]] double server_arrival(ServerId s) const;

  /// Eq. 17: mean smoothed traffic for p over the N live servers.
  [[nodiscard]] double mean_node_traffic(PartitionId p,
                                         std::size_t live_servers) const;

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] bool initialized() const noexcept { return initialized_; }

 private:
  std::size_t partitions_;
  std::size_t servers_;
  std::size_t datacenters_;
  double alpha_;  // effective history weight
  bool initialized_ = false;
  std::vector<double> avg_query_;          // [p]
  std::vector<double> node_traffic_;       // [p][s]
  std::vector<double> node_traffic_sum_;   // [p] (for Eq. 17)
  std::vector<double> requester_queries_;  // [p][dc]
  std::vector<double> server_arrival_;     // [s]
};

}  // namespace rfh
