#include "ring/ring.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "ring/hash.h"

namespace rfh {
namespace {

HashRing make_ring(std::uint32_t servers, std::uint32_t tokens = 16) {
  HashRing ring(tokens);
  for (std::uint32_t s = 0; s < servers; ++s) {
    ring.add_server(ServerId{s});
  }
  return ring;
}

TEST(HashRing, ContainsAndCount) {
  HashRing ring = make_ring(5);
  EXPECT_EQ(ring.server_count(), 5u);
  EXPECT_TRUE(ring.contains(ServerId{0}));
  EXPECT_FALSE(ring.contains(ServerId{9}));
  ring.remove_server(ServerId{0});
  EXPECT_FALSE(ring.contains(ServerId{0}));
  EXPECT_EQ(ring.server_count(), 4u);
}

TEST(HashRing, PrimaryIsDeterministic) {
  const HashRing a = make_ring(20);
  const HashRing b = make_ring(20);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng.next();
    EXPECT_EQ(a.primary(key), b.primary(key));
  }
}

TEST(HashRing, SingleServerOwnsEverything) {
  const HashRing ring = make_ring(1);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.primary(rng.next()), ServerId{0});
  }
}

TEST(HashRing, PreferenceListDistinctAndStartsAtPrimary) {
  const HashRing ring = make_ring(10);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng.next();
    const auto list = ring.preference_list(key, 4);
    ASSERT_EQ(list.size(), 4u);
    EXPECT_EQ(list[0], ring.primary(key));
    const std::set<ServerId> unique(list.begin(), list.end());
    EXPECT_EQ(unique.size(), 4u);
  }
}

TEST(HashRing, PreferenceListCappedAtServerCount) {
  const HashRing ring = make_ring(3);
  const auto list = ring.preference_list(12345, 10);
  EXPECT_EQ(list.size(), 3u);
}

TEST(HashRing, KeysSpreadAcrossServers) {
  const HashRing ring = make_ring(10, 32);
  std::map<ServerId, int> counts;
  Rng rng(6);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[ring.primary(rng.next())];
  }
  EXPECT_EQ(counts.size(), 10u);  // every server owns keyspace
  for (const auto& [server, count] : counts) {
    // Each should own roughly 10%; allow generous virtual-node variance.
    EXPECT_GT(count, n / 40) << "server " << server.value();
    EXPECT_LT(count, n / 3) << "server " << server.value();
  }
}

TEST(HashRing, JoinMovesOnlyItsShare) {
  // Adding the (n+1)-th server must remap about 1/(n+1) of the keyspace
  // and never remap a key to a server other than the new one.
  HashRing ring = make_ring(10, 32);
  Rng rng(7);
  const int n = 20000;
  std::vector<std::uint64_t> keys(n);
  std::vector<ServerId> before(n);
  for (int i = 0; i < n; ++i) {
    keys[static_cast<std::size_t>(i)] = rng.next();
    before[static_cast<std::size_t>(i)] =
        ring.primary(keys[static_cast<std::size_t>(i)]);
  }
  ring.add_server(ServerId{10});
  int moved = 0;
  for (int i = 0; i < n; ++i) {
    const ServerId after = ring.primary(keys[static_cast<std::size_t>(i)]);
    if (after != before[static_cast<std::size_t>(i)]) {
      EXPECT_EQ(after, ServerId{10}) << "key remapped to an old server";
      ++moved;
    }
  }
  const double fraction = static_cast<double>(moved) / n;
  EXPECT_GT(fraction, 0.02);
  EXPECT_LT(fraction, 0.30);  // ~1/11 expected; generous upper bound
}

TEST(HashRing, LeaveOnlyRemapsTheLeaverKeys) {
  HashRing ring = make_ring(10, 32);
  Rng rng(8);
  const int n = 20000;
  std::vector<std::uint64_t> keys(n);
  std::vector<ServerId> before(n);
  for (int i = 0; i < n; ++i) {
    keys[static_cast<std::size_t>(i)] = rng.next();
    before[static_cast<std::size_t>(i)] =
        ring.primary(keys[static_cast<std::size_t>(i)]);
  }
  ring.remove_server(ServerId{3});
  for (int i = 0; i < n; ++i) {
    const ServerId b = before[static_cast<std::size_t>(i)];
    const ServerId after = ring.primary(keys[static_cast<std::size_t>(i)]);
    if (b != ServerId{3}) {
      EXPECT_EQ(after, b) << "unaffected key moved on departure";
    } else {
      EXPECT_NE(after, ServerId{3});
    }
  }
}

TEST(HashRing, JoinThenLeaveRestoresMapping) {
  HashRing ring = make_ring(8, 16);
  Rng rng(9);
  std::vector<std::uint64_t> keys(5000);
  std::vector<ServerId> before(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.next();
    before[i] = ring.primary(keys[i]);
  }
  ring.add_server(ServerId{8});
  ring.remove_server(ServerId{8});
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(ring.primary(keys[i]), before[i]);
  }
}

TEST(HashRing, PartitionOwnerStableAcrossInstances) {
  const HashRing a = make_ring(25);
  const HashRing b = make_ring(25);
  for (std::uint32_t p = 0; p < 64; ++p) {
    EXPECT_EQ(a.partition_owner(PartitionId{p}),
              b.partition_owner(PartitionId{p}));
  }
}

TEST(HashRing, PartitionsSpreadOverServers) {
  const HashRing ring = make_ring(100, 16);
  std::set<ServerId> owners;
  for (std::uint32_t p = 0; p < 64; ++p) {
    owners.insert(ring.partition_owner(PartitionId{p}));
  }
  // 64 partitions over 100 servers: expect substantial spread.
  EXPECT_GT(owners.size(), 30u);
}

TEST(HashRing, BulkLeaveMatchesSequentialRemoves) {
  HashRing bulk = make_ring(60, 8);
  HashRing seq = make_ring(60, 8);
  std::vector<ServerId> victims;
  for (std::uint32_t s = 3; s < 60; s += 7) victims.push_back(ServerId{s});
  bulk.remove_servers(victims);
  for (const ServerId s : victims) seq.remove_server(s);
  EXPECT_EQ(bulk.server_count(), seq.server_count());
  for (const ServerId s : victims) EXPECT_FALSE(bulk.contains(s));
  for (std::uint64_t key = 0; key < 512; ++key) {
    EXPECT_EQ(bulk.primary(key), seq.primary(key));
    EXPECT_EQ(bulk.preference_list(key, 5), seq.preference_list(key, 5));
  }
}

TEST(HashRing, BulkLeaveThenRejoinRestoresMapping) {
  HashRing ring = make_ring(40);
  std::map<std::uint64_t, ServerId> before;
  for (std::uint64_t key = 0; key < 256; ++key) {
    before[key] = ring.primary(key);
  }
  const std::vector<ServerId> wave{ServerId{4}, ServerId{11}, ServerId{29},
                                   ServerId{33}};
  ring.remove_servers(wave);
  EXPECT_EQ(ring.server_count(), 36u);
  ring.add_servers(wave);
  // Token positions are pure hashes of (server, index), so a rejoin puts
  // every token back where it was and the keyspace mapping is restored.
  for (const auto& [key, owner] : before) {
    EXPECT_EQ(ring.primary(key), owner);
  }
}

TEST(HashRingDeath, Misuse) {
  HashRing ring = make_ring(2);
  EXPECT_DEATH(ring.add_server(ServerId{0}), "");        // duplicate
  EXPECT_DEATH(ring.remove_server(ServerId{7}), "");     // absent
  EXPECT_DEATH(ring.add_server(ServerId::invalid()), "");
  HashRing empty(4);
  EXPECT_DEATH((void)empty.primary(1), "");
  EXPECT_DEATH(HashRing(0), "");
}

}  // namespace
}  // namespace rfh
