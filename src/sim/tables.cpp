#include "sim/tables.h"

#include <algorithm>

#include "common/assert.h"

namespace rfh {

PartitionTable::PartitionTable(std::uint32_t partitions,
                               std::uint32_t initial_stride)
    : partitions_(partitions), stride_(std::max(1u, initial_stride)) {
  slots_.resize(std::size_t{partitions_} * stride_);
  count_.assign(partitions_, 0);
}

void PartitionTable::grow_stride() {
  const std::uint32_t wider = stride_ * 2;
  std::vector<Replica> grown(std::size_t{partitions_} * wider);
  for (std::uint32_t p = 0; p < partitions_; ++p) {
    std::copy_n(slots_.begin() + std::size_t{p} * stride_, count_[p],
                grown.begin() + std::size_t{p} * wider);
  }
  slots_ = std::move(grown);
  stride_ = wider;
}

void PartitionTable::add(PartitionId p, ServerId s, bool primary) {
  RFH_ASSERT(p.value() < partitions_);
  RFH_ASSERT_MSG(!has(p, s), "server already hosts this partition");
  if (count_[p.value()] == stride_) grow_stride();
  slots_[std::size_t{p.value()} * stride_ + count_[p.value()]] =
      Replica{s, primary};
  count_[p.value()] += 1;
  total_ += 1;
}

void PartitionTable::remove(PartitionId p, ServerId s) {
  RFH_ASSERT(p.value() < partitions_);
  Replica* base = slots_.data() + std::size_t{p.value()} * stride_;
  const std::uint32_t n = count_[p.value()];
  std::uint32_t at = n;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (base[i].server == s) {
      at = i;
      break;
    }
  }
  RFH_ASSERT_MSG(at < n, "no such replica");
  for (std::uint32_t i = at + 1; i < n; ++i) base[i - 1] = base[i];
  count_[p.value()] = n - 1;
  RFH_ASSERT(total_ > 0);
  total_ -= 1;
}

void PartitionTable::set_primary(PartitionId p, ServerId s) {
  RFH_ASSERT(p.value() < partitions_);
  Replica* base = slots_.data() + std::size_t{p.value()} * stride_;
  bool found = false;
  for (std::uint32_t i = 0; i < count_[p.value()]; ++i) {
    if (base[i].server == s) {
      base[i].primary = true;
      found = true;
    } else {
      base[i].primary = false;
    }
  }
  RFH_ASSERT_MSG(found, "set_primary: server hosts no copy");
}

ServerId PartitionTable::primary_of(PartitionId p) const {
  RFH_ASSERT(p.value() < partitions_);
  const Replica* base = slots_.data() + std::size_t{p.value()} * stride_;
  for (std::uint32_t i = 0; i < count_[p.value()]; ++i) {
    if (base[i].primary) return base[i].server;
  }
  return ServerId::invalid();
}

std::span<const Replica> PartitionTable::replicas(PartitionId p) const {
  RFH_ASSERT(p.value() < partitions_);
  return {slots_.data() + std::size_t{p.value()} * stride_,
          count_[p.value()]};
}

bool PartitionTable::has(PartitionId p, ServerId s) const {
  RFH_ASSERT(p.value() < partitions_);
  const Replica* base = slots_.data() + std::size_t{p.value()} * stride_;
  for (std::uint32_t i = 0; i < count_[p.value()]; ++i) {
    if (base[i].server == s) return true;
  }
  return false;
}

std::uint32_t PartitionTable::count(PartitionId p) const {
  RFH_ASSERT(p.value() < partitions_);
  return count_[p.value()];
}

ServerTable::ServerTable(std::uint32_t servers)
    : alive_(servers, 0), storage_used_(servers, 0), copies_on_(servers, 0) {}

void ServerTable::bring_all_up() {
  std::fill(alive_.begin(), alive_.end(), std::uint8_t{1});
  live_count_ = servers();
}

bool ServerTable::alive(ServerId s) const {
  RFH_ASSERT(s.value() < alive_.size());
  return alive_[s.value()] != 0;
}

void ServerTable::set_alive(ServerId s, bool up) {
  RFH_ASSERT(s.value() < alive_.size());
  RFH_ASSERT_MSG((alive_[s.value()] != 0) != up, "liveness unchanged");
  alive_[s.value()] = up ? 1 : 0;
  if (up) {
    live_count_ += 1;
  } else {
    RFH_ASSERT(live_count_ > 0);
    live_count_ -= 1;
  }
}

Bytes ServerTable::storage_used(ServerId s) const {
  RFH_ASSERT(s.value() < storage_used_.size());
  return storage_used_[s.value()];
}

void ServerTable::add_storage(ServerId s, Bytes bytes) {
  RFH_ASSERT(s.value() < storage_used_.size());
  storage_used_[s.value()] += bytes;
}

void ServerTable::sub_storage(ServerId s, Bytes bytes) {
  RFH_ASSERT(s.value() < storage_used_.size());
  RFH_ASSERT(storage_used_[s.value()] >= bytes);
  storage_used_[s.value()] -= bytes;
}

std::uint32_t ServerTable::copies(ServerId s) const {
  RFH_ASSERT(s.value() < copies_on_.size());
  return copies_on_[s.value()];
}

void ServerTable::inc_copies(ServerId s) {
  RFH_ASSERT(s.value() < copies_on_.size());
  copies_on_[s.value()] += 1;
}

void ServerTable::dec_copies(ServerId s) {
  RFH_ASSERT(s.value() < copies_on_.size());
  RFH_ASSERT(copies_on_[s.value()] > 0);
  copies_on_[s.value()] -= 1;
}

}  // namespace rfh
