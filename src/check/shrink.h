// Greedy failing-case minimization.
//
// Given a CheckCase known to fail (diverge or break an invariant) and a
// predicate that re-runs the check, shrink_case() repeatedly tries
// smaller variants — fewer epochs, fewer servers, fewer partitions,
// fewer fault events — keeping a variant whenever it still fails, until
// a fixpoint or the attempt budget is reached. The result is the small
// reproducer committed under tests/data/corpus/.
#pragma once

#include <cstddef>
#include <functional>

#include "check/case.h"

namespace rfh {

/// Returns true when the candidate case still exhibits the failure.
using FailurePredicate = std::function<bool(const CheckCase&)>;

struct ShrinkResult {
  /// The smallest still-failing case found (== the input when nothing
  /// could be removed).
  CheckCase smallest;
  /// Predicate evaluations performed.
  std::size_t attempts = 0;
  /// Reductions that kept the failure alive.
  std::size_t accepted = 0;
};

/// Minimize `failing`. The predicate must return true for `failing`
/// itself (the caller established the failure); shrink_case never
/// re-checks the input, only candidates. `max_attempts` bounds the
/// total predicate evaluations, so shrinking a slow case stays cheap.
[[nodiscard]] ShrinkResult shrink_case(const CheckCase& failing,
                                       const FailurePredicate& still_fails,
                                       std::size_t max_attempts = 150);

}  // namespace rfh
