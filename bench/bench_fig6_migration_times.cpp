// Fig. 6 — migration times (cumulative count; average per replica).
//   (a) total, random query            (b) average, random query
//   (c) total, flash crowd             (d) average, flash crowd
//
// Paper shape: request-oriented migrates by far the most in every
// setting; random never migrates (no migration function); owner-oriented
// migrates only on membership change (zero under stable topology); RFH
// stays low.
#include <iostream>

#include "bench_args.h"
#include "exec/sweep.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  const unsigned jobs = rfh::bench_jobs(argc, argv);
  {
    const rfh::Scenario s = rfh::Scenario::paper_random_query();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure_u32(std::cout,
                          "Fig 6(a): total migration times, random query", r,
                          &rfh::EpochMetrics::migrations_total);
    rfh::print_figure(std::cout,
                      "Fig 6(b): avg migration times per replica, random query",
                      r, &rfh::EpochMetrics::migrations_avg);
  }
  {
    const rfh::Scenario s = rfh::Scenario::paper_flash_crowd();
    const rfh::ComparativeResult r = rfh::run_comparison_pooled(s, {}, jobs);
    rfh::print_figure_u32(std::cout,
                          "Fig 6(c): total migration times, flash crowd", r,
                          &rfh::EpochMetrics::migrations_total);
    rfh::print_figure(std::cout,
                      "Fig 6(d): avg migration times per replica, flash crowd",
                      r, &rfh::EpochMetrics::migrations_avg);
  }
  return 0;
}
