file(REMOVE_RECURSE
  "CMakeFiles/rfh_common.dir/availability.cpp.o"
  "CMakeFiles/rfh_common.dir/availability.cpp.o.d"
  "CMakeFiles/rfh_common.dir/erlang.cpp.o"
  "CMakeFiles/rfh_common.dir/erlang.cpp.o.d"
  "CMakeFiles/rfh_common.dir/histogram.cpp.o"
  "CMakeFiles/rfh_common.dir/histogram.cpp.o.d"
  "CMakeFiles/rfh_common.dir/log.cpp.o"
  "CMakeFiles/rfh_common.dir/log.cpp.o.d"
  "CMakeFiles/rfh_common.dir/mathutil.cpp.o"
  "CMakeFiles/rfh_common.dir/mathutil.cpp.o.d"
  "CMakeFiles/rfh_common.dir/rng.cpp.o"
  "CMakeFiles/rfh_common.dir/rng.cpp.o.d"
  "librfh_common.a"
  "librfh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
