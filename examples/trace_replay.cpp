// Trace capture and replay: record the demand stream of a stochastic
// run, serialize it to CSV, replay it through a fresh simulation, and
// verify the replayed run is identical. This is the workflow for feeding
// a production query log (converted to the same CSV) into the simulator.
//
//   $ ./trace_replay
#include <cstdio>
#include <sstream>

#include "core/rfh_policy.h"
#include "harness/scenario.h"
#include "workload/trace.h"

int main() {
  const rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  const rfh::Epoch epochs = 60;

  // Run 1: stochastic workload, recorded.
  rfh::World world1 = rfh::build_paper_world(scenario.world);
  auto recording = std::make_unique<rfh::RecordingWorkload>(
      rfh::make_workload(scenario, world1));
  auto* recorder = recording.get();
  rfh::Simulation sim1(std::move(world1), scenario.sim, std::move(recording),
                       std::make_unique<rfh::RfhPolicy>());
  for (rfh::Epoch e = 0; e < epochs; ++e) sim1.step();

  // Serialize the captured trace.
  std::stringstream csv;
  rfh::write_trace_csv(csv, recorder->recorded());
  const std::string text = csv.str();
  std::printf("captured %zu epochs of demand (%zu bytes of CSV)\n",
              recorder->recorded().size(), text.size());

  // Run 2: replay the CSV through a fresh simulation.
  std::stringstream csv_in(text);
  rfh::World world2 = rfh::build_paper_world(scenario.world);
  rfh::Simulation sim2(
      std::move(world2), scenario.sim,
      std::make_unique<rfh::TraceWorkload>(rfh::TraceWorkload::from_csv(csv_in)),
      std::make_unique<rfh::RfhPolicy>());
  for (rfh::Epoch e = 0; e < epochs; ++e) sim2.step();

  const bool identical =
      sim1.cluster().total_replicas() == sim2.cluster().total_replicas() &&
      sim1.cumulative_replications() == sim2.cumulative_replications() &&
      sim1.cumulative_migrations() == sim2.cumulative_migrations();
  std::printf("replay after %u epochs: %u vs %u replicas, %u vs %u "
              "replications -> %s\n",
              epochs, sim1.cluster().total_replicas(),
              sim2.cluster().total_replicas(),
              sim1.cumulative_replications(), sim2.cumulative_replications(),
              identical ? "identical" : "DIVERGED");
  return identical ? 0 : 1;
}
