// Traffic-hub anatomy: where do the "conjunction nodes of many necessary
// routing paths" actually form?
//
// Prints (1) the static transit structure of the paper world — how many
// shortest paths towards each holder pass through each datacenter — and
// (2) the live smoothed traffic per datacenter under the flash-crowd
// stage 1 (80% of queries from H, I, J), next to where RFH actually
// placed its copies. This is the paper's Fig. 1 narrative, measured.
//
//   $ ./hub_analysis
#include <cstdio>
#include <vector>

#include "core/rfh_policy.h"
#include "harness/scenario.h"
#include "net/graph.h"
#include "net/shortest_paths.h"

int main() {
  const rfh::World world = rfh::build_paper_world();
  const rfh::DcGraph graph(world.topology.datacenter_count(), world.links);
  const rfh::ShortestPaths paths(graph);

  std::printf("static transit counts (paths from all DCs towards column "
              "DC that pass through row DC):\n      ");
  for (char to = 'A'; to <= 'J'; ++to) std::printf("%4c", to);
  std::printf("\n");
  for (char via = 'A'; via <= 'J'; ++via) {
    std::printf("via %c:", via);
    for (char to = 'A'; to <= 'J'; ++to) {
      const auto counts = paths.transit_counts(world.by_letter(to));
      std::printf("%4u", counts[world.by_letter(via).value()]);
    }
    std::printf("\n");
  }

  // Live run: flash-crowd stage 1 only (crowd near H, I, J).
  rfh::Scenario scenario = rfh::Scenario::paper_flash_crowd();
  scenario.epochs = 400;  // stage length 100; we stop inside stage 1
  auto sim = rfh::make_simulation(scenario, rfh::PolicyKind::kRfh);
  for (rfh::Epoch e = 0; e < 80; ++e) sim->step();

  std::printf("\nflash stage 1 (80%% of queries near H, I, J), epoch 80:\n");
  std::printf("%3s %18s %10s %8s\n", "DC", "smoothed traffic", "copies",
              "primaries");
  for (char letter = 'A'; letter <= 'J'; ++letter) {
    const rfh::DatacenterId dc = sim->world().by_letter(letter);
    double traffic = 0.0;
    for (const rfh::ServerId s : sim->topology().servers_in(dc)) {
      for (std::uint32_t p = 0; p < scenario.sim.partitions; ++p) {
        traffic += sim->stats().node_traffic(rfh::PartitionId{p}, s);
      }
    }
    std::uint32_t copies = 0;
    std::uint32_t primaries = 0;
    for (std::uint32_t p = 0; p < scenario.sim.partitions; ++p) {
      for (const rfh::ServerId host :
           sim->cluster().hosts_in_dc(rfh::PartitionId{p}, dc)) {
        ++copies;
        if (sim->cluster().primary_of(rfh::PartitionId{p}) == host) {
          ++primaries;
        }
      }
    }
    std::printf("%3c %18.1f %10u %8u\n", letter, traffic, copies, primaries);
  }
  std::printf("\n(gateway DCs on the Asia->US routes should dominate both "
              "the traffic column and the non-primary copy counts)\n");
  return 0;
}
