#include "routing/router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "net/graph.h"
#include "topology/world.h"

namespace rfh {
namespace {

class RouterTest : public ::testing::Test {
 protected:
  RouterTest()
      : world_(build_paper_world()),
        graph_(world_.topology.datacenter_count(), world_.links),
        paths_(graph_),
        router_(world_.topology, paths_) {
    live_by_dc_.resize(world_.topology.datacenter_count());
    for (const Server& s : world_.topology.servers()) {
      live_by_dc_[s.datacenter.value()].push_back(s.id);
    }
  }

  ServerId first_server_in(char letter) const {
    return world_.topology.servers_in(world_.by_letter(letter)).front();
  }

  World world_;
  DcGraph graph_;
  ShortestPaths paths_;
  Router router_;
  std::vector<std::vector<ServerId>> live_by_dc_;
};

TEST_F(RouterTest, StagesFollowTheDatacenterPath) {
  const ServerId holder = first_server_in('A');
  const Route route = router_.route(PartitionId{0}, world_.by_letter('J'),
                                    holder, live_by_dc_);
  const auto dc_path =
      paths_.path(world_.by_letter('J'), world_.by_letter('A'));
  ASSERT_EQ(route.stages.size(), dc_path.size());
  for (std::size_t i = 0; i < dc_path.size(); ++i) {
    EXPECT_EQ(route.stages[i].dc, dc_path[i]);
  }
  EXPECT_EQ(route.holder, holder);
}

TEST_F(RouterTest, HopsAreMonotoneAndTotalIsOnePastLastStage) {
  const ServerId holder = first_server_in('A');
  const Route route = router_.route(PartitionId{3}, world_.by_letter('H'),
                                    holder, live_by_dc_);
  ASSERT_FALSE(route.stages.empty());
  EXPECT_EQ(route.stages.front().hops_at_entry, 1u);
  for (std::size_t i = 1; i < route.stages.size(); ++i) {
    EXPECT_EQ(route.stages[i].hops_at_entry,
              route.stages[i - 1].hops_at_entry + 1);
  }
  EXPECT_EQ(route.total_hops, route.stages.back().hops_at_entry + 1);
}

TEST_F(RouterTest, RelayIsALiveServerOfItsDatacenter) {
  const ServerId holder = first_server_in('A');
  for (const DatacenterId requester : world_.dc) {
    const Route route =
        router_.route(PartitionId{7}, requester, holder, live_by_dc_);
    for (const RouteStage& stage : route.stages) {
      const auto& live = live_by_dc_[stage.dc.value()];
      EXPECT_NE(std::find(live.begin(), live.end(), stage.relay), live.end());
      EXPECT_EQ(world_.topology.server(stage.relay).datacenter, stage.dc);
    }
  }
}

TEST_F(RouterTest, HolderDatacenterRelayIsTheHolderItself) {
  const ServerId holder = first_server_in('A');
  const Route route = router_.route(PartitionId{1}, world_.by_letter('C'),
                                    holder, live_by_dc_);
  EXPECT_EQ(route.stages.back().dc, world_.by_letter('A'));
  EXPECT_EQ(route.stages.back().relay, holder);
}

TEST_F(RouterTest, LocalQueryHasSingleStage) {
  const ServerId holder = first_server_in('A');
  const Route route = router_.route(PartitionId{2}, world_.by_letter('A'),
                                    holder, live_by_dc_);
  ASSERT_EQ(route.stages.size(), 1u);
  EXPECT_EQ(route.stages[0].relay, holder);
  EXPECT_EQ(route.total_hops, 2u);  // entry + descent
}

TEST_F(RouterTest, DeadDatacenterIsSkippedButCostsAHop) {
  const ServerId holder = first_server_in('A');
  // J -> A transits I and D; empty out I.
  const Route before = router_.route(PartitionId{0}, world_.by_letter('J'),
                                     holder, live_by_dc_);
  auto live = live_by_dc_;
  live[world_.by_letter('I').value()].clear();
  // Liveness changed: the owner of a Router must flush its route memo
  // (the engine does this in fail_servers / recover_servers).
  router_.invalidate_routes();
  const Route after = router_.route(PartitionId{0}, world_.by_letter('J'),
                                    holder, live);
  EXPECT_EQ(after.stages.size(), before.stages.size() - 1);
  EXPECT_EQ(after.total_hops, before.total_hops);  // hop still paid
  for (const RouteStage& stage : after.stages) {
    EXPECT_NE(stage.dc, world_.by_letter('I'));
  }
}

TEST_F(RouterTest, RelayIsDeterministicPerPartition) {
  const ServerId holder = first_server_in('A');
  const Route r1 = router_.route(PartitionId{5}, world_.by_letter('J'),
                                 holder, live_by_dc_);
  const Route r2 = router_.route(PartitionId{5}, world_.by_letter('J'),
                                 holder, live_by_dc_);
  ASSERT_EQ(r1.stages.size(), r2.stages.size());
  for (std::size_t i = 0; i < r1.stages.size(); ++i) {
    EXPECT_EQ(r1.stages[i].relay, r2.stages[i].relay);
  }
}

TEST_F(RouterTest, DifferentPartitionsUseDifferentRelays) {
  // Rendezvous hashing spreads relay duty: across 64 partitions the
  // transit datacenter D must not always pick the same server.
  const ServerId holder = first_server_in('A');
  std::set<ServerId> relays;
  for (std::uint32_t p = 0; p < 64; ++p) {
    const Route route = router_.route(PartitionId{p}, world_.by_letter('J'),
                                      holder, live_by_dc_);
    for (const RouteStage& stage : route.stages) {
      if (stage.dc == world_.by_letter('D')) relays.insert(stage.relay);
    }
  }
  EXPECT_GT(relays.size(), 3u);
}

TEST_F(RouterTest, RelayForPicksAmongGivenServers) {
  const std::vector<ServerId> live{ServerId{12}, ServerId{13}};
  const ServerId relay =
      Router::relay_for(PartitionId{0}, DatacenterId{1}, live);
  EXPECT_TRUE(relay == ServerId{12} || relay == ServerId{13});
}

}  // namespace
}  // namespace rfh
