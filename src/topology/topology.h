// Physical topology: datacenter -> room -> rack -> server hierarchy.
//
// This is the substrate every policy reasons about. It is immutable once
// built except for server liveness, which the simulation engine toggles
// for failure injection (a dead server keeps its slot so IDs stay stable,
// matching how the paper removes 30 random servers at epoch 290 and lets
// the system recover).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "topology/geo.h"
#include "topology/label.h"

namespace rfh {

/// Per-server capacities. The paper states "for every server, their
/// capacities are different from each other, according to their own
/// physical condition" — world.h draws these heterogeneously from a
/// seeded generator.
struct ServerSpec {
  /// Maximum disk storage (Table I: 10 GB).
  Bytes storage_capacity = gib(10);
  /// Queries one hosted replica can absorb per epoch (paper's C_ikl).
  double per_replica_capacity = 2.0;
  /// Service channels for the M/G/c blocking model (paper's c_i, Eq. 18).
  std::uint32_t service_channels = 6;
  /// Replication bandwidth (Table I: 300 MB/epoch).
  BytesPerEpoch replication_bandwidth = mib(300);
  /// Migration bandwidth (Table I: 100 MB/epoch).
  BytesPerEpoch migration_bandwidth = mib(100);
  /// Virtual-node hosting limit ("a physical node hosts an amount of
  /// virtual nodes within its capacity limit").
  std::uint32_t max_vnodes = 16;
};

struct Server {
  ServerId id;
  RackId rack;
  RoomId room;
  DatacenterId datacenter;
  NodeLabel label;
  ServerSpec spec;
};

struct Rack {
  RackId id;
  RoomId room;
  DatacenterId datacenter;
  std::vector<ServerId> servers;
};

struct Room {
  RoomId id;
  DatacenterId datacenter;
  std::vector<RackId> racks;
};

struct Datacenter {
  DatacenterId id;
  std::string name;          // short name used in labels, e.g. "GA1"
  std::string country_code;  // "USA"
  Continent continent = Continent::kNorthAmerica;
  GeoPoint location;
  std::vector<RoomId> rooms;
  std::vector<ServerId> servers;  // flattened, in creation order
};

/// Immutable hierarchy with O(1) lookups in every direction.
class Topology {
 public:
  DatacenterId add_datacenter(std::string name, std::string country_code,
                              Continent continent, GeoPoint location);
  RoomId add_room(DatacenterId dc);
  RackId add_rack(RoomId room);
  ServerId add_server(RackId rack, const ServerSpec& spec);

  [[nodiscard]] std::size_t datacenter_count() const noexcept {
    return datacenters_.size();
  }
  [[nodiscard]] std::size_t server_count() const noexcept {
    return servers_.size();
  }

  [[nodiscard]] const Datacenter& datacenter(DatacenterId id) const;
  [[nodiscard]] const Room& room(RoomId id) const;
  [[nodiscard]] const Rack& rack(RackId id) const;
  [[nodiscard]] const Server& server(ServerId id) const;

  [[nodiscard]] const std::vector<Datacenter>& datacenters() const noexcept {
    return datacenters_;
  }
  [[nodiscard]] const std::vector<Server>& servers() const noexcept {
    return servers_;
  }

  /// All servers hosted in a datacenter, in creation order.
  [[nodiscard]] const std::vector<ServerId>& servers_in(DatacenterId dc) const;

  /// Great-circle distance between two datacenters in kilometres.
  [[nodiscard]] double distance_km(DatacenterId a, DatacenterId b) const;

  /// Availability level (1..5) between two servers (see label.h).
  [[nodiscard]] std::uint32_t availability_level(ServerId a, ServerId b) const;

 private:
  std::vector<Datacenter> datacenters_;
  std::vector<Room> rooms_;
  std::vector<Rack> racks_;
  std::vector<Server> servers_;
};

}  // namespace rfh
