// Per-epoch traffic observation matrices (the raw inputs to Eqs. 2-8,
// 20-26).
//
// Everything is dense [partition x server]: with the Table I scale
// (64 x 100) that is a few hundred kilobytes, reused across epochs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/assert.h"
#include "common/histogram.h"
#include "common/ids.h"

namespace rfh {

class EpochTraffic {
 public:
  EpochTraffic(std::size_t partitions, std::size_t servers,
               std::size_t datacenters)
      : partitions_(partitions),
        servers_(servers),
        datacenters_(datacenters),
        node_traffic_(partitions * servers, 0.0),
        served_(partitions * servers, 0.0),
        requester_queries_(partitions * datacenters, 0.0),
        partition_queries_(partitions, 0.0),
        unserved_(partitions, 0.0),
        server_work_(servers, 0.0) {}

  void reset() {
    std::fill(node_traffic_.begin(), node_traffic_.end(), 0.0);
    std::fill(served_.begin(), served_.end(), 0.0);
    std::fill(requester_queries_.begin(), requester_queries_.end(), 0.0);
    std::fill(partition_queries_.begin(), partition_queries_.end(), 0.0);
    std::fill(unserved_.begin(), unserved_.end(), 0.0);
    std::fill(server_work_.begin(), server_work_.end(), 0.0);
    total_queries_ = 0.0;
    routed_queries_ = 0.0;
    path_hops_weighted_ = 0.0;
    latency_.reset();
  }

  /// Residual traffic that arrived at server s for partition p — the
  /// paper's tr_ikt: what the node sees after upstream replicas absorbed
  /// their capacity (Eqs. 2-8). Attributed to the relay server of each
  /// transit datacenter, plus to non-relay servers for what they absorb.
  [[nodiscard]] double node_traffic(PartitionId p, ServerId s) const {
    return node_traffic_[index(p, s)];
  }
  double& node_traffic_mut(PartitionId p, ServerId s) {
    return node_traffic_[index(p, s)];
  }

  /// Queries actually absorbed by the replica of p on s this epoch
  /// (bounded by the server's per-replica capacity).
  [[nodiscard]] double served(PartitionId p, ServerId s) const {
    return served_[index(p, s)];
  }
  double& served_mut(PartitionId p, ServerId s) { return served_[index(p, s)]; }

  /// q_ijt: queries for p issued near datacenter j this epoch.
  [[nodiscard]] double requester_queries(PartitionId p, DatacenterId j) const {
    return requester_queries_[p.value() * datacenters_ + j.value()];
  }
  double& requester_queries_mut(PartitionId p, DatacenterId j) {
    return requester_queries_[p.value() * datacenters_ + j.value()];
  }

  /// Total queries for p this epoch (sum over requesters).
  [[nodiscard]] double partition_queries(PartitionId p) const {
    return partition_queries_[p.value()];
  }
  double& partition_queries_mut(PartitionId p) {
    return partition_queries_[p.value()];
  }

  /// Demand for p that exceeded even the primary's capacity (blocked).
  [[nodiscard]] double unserved(PartitionId p) const {
    return unserved_[p.value()];
  }
  double& unserved_mut(PartitionId p) { return unserved_[p.value()]; }

  /// Queries a server touched this epoch (forwarding + absorption) —
  /// the per-node workload l_i of Eqs. 24-26 and the Erlang-B arrival
  /// rate input.
  [[nodiscard]] double server_work(ServerId s) const {
    return server_work_[s.value()];
  }
  double& server_work_mut(ServerId s) { return server_work_[s.value()]; }

  [[nodiscard]] double total_queries() const noexcept { return total_queries_; }
  void add_total_queries(double q) noexcept { total_queries_ += q; }

  /// Mean lookup path length (hops), query-weighted.
  [[nodiscard]] double mean_path_length() const noexcept {
    return routed_queries_ > 0.0 ? path_hops_weighted_ / routed_queries_ : 0.0;
  }
  void add_path_sample(double queries, double hops) noexcept {
    routed_queries_ += queries;
    path_hops_weighted_ += queries * hops;
  }

  /// Per-query response-latency distribution for this epoch (ms).
  [[nodiscard]] const Histogram& latency() const noexcept { return latency_; }
  void add_latency(double queries, double ms) noexcept {
    latency_.add(queries, ms);
  }

  [[nodiscard]] std::size_t partitions() const noexcept { return partitions_; }
  [[nodiscard]] std::size_t servers() const noexcept { return servers_; }
  [[nodiscard]] std::size_t datacenters() const noexcept {
    return datacenters_;
  }

 private:
  [[nodiscard]] std::size_t index(PartitionId p, ServerId s) const {
    RFH_ASSERT(p.value() < partitions_ && s.value() < servers_);
    return p.value() * servers_ + s.value();
  }

  std::size_t partitions_;
  std::size_t servers_;
  std::size_t datacenters_;
  std::vector<double> node_traffic_;
  std::vector<double> served_;
  std::vector<double> requester_queries_;
  std::vector<double> partition_queries_;
  std::vector<double> unserved_;
  std::vector<double> server_work_;
  double total_queries_ = 0.0;
  double routed_queries_ = 0.0;
  double path_hops_weighted_ = 0.0;
  Histogram latency_;
};

}  // namespace rfh
