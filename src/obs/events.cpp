#include "obs/events.h"

#include <array>
#include <utility>

namespace rfh {

const char* rule_name(DecisionRule rule) noexcept {
  switch (rule) {
    case DecisionRule::kNone: return "none";
    case DecisionRule::kAvailabilityFloor: return "availability_floor";
    case DecisionRule::kOverloadHub: return "overload_hub";
    case DecisionRule::kOverloadForced: return "overload_forced";
    case DecisionRule::kOverloadLocal: return "overload_local";
    case DecisionRule::kMigrationBenefit: return "migration_benefit";
    case DecisionRule::kSuicideCold: return "suicide_cold";
  }
  return "?";
}

const char* rule_inequality(DecisionRule rule) noexcept {
  switch (rule) {
    case DecisionRule::kNone: return "";
    case DecisionRule::kAvailabilityFloor: return "r < r_min (Eq. 14)";
    case DecisionRule::kOverloadHub: return "tr >= beta*q_bar (Eq. 12)";
    case DecisionRule::kOverloadForced:
      return "tr >= beta*q_bar, no hub >= gamma*q_bar (Eq. 12, forced)";
    case DecisionRule::kOverloadLocal:
      return "tr >= beta*q_bar, demand local (Eq. 12, local)";
    case DecisionRule::kMigrationBenefit:
      return "tr_hub - tr_cold >= mu*tr_mean (Eq. 16)";
    case DecisionRule::kSuicideCold: return "tr <= delta*q_bar (Eq. 15)";
  }
  return "";
}

const char* drop_reason_name(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::kBandwidth: return "bandwidth";
    case DropReason::kStorageCap: return "storage_cap";
    case DropReason::kNodeCap: return "node_cap";
    case DropReason::kDeadTarget: return "dead_target";
    case DropReason::kInvalid: return "invalid";
    case DropReason::kZoneDiversity: return "zone_diversity";
    case DropReason::kUnknown: return "unknown";
  }
  return "?";
}

const char* action_kind_name(ActionKind kind) noexcept {
  switch (kind) {
    case ActionKind::kReplicate: return "replicate";
    case ActionKind::kMigrate: return "migrate";
    case ActionKind::kSuicide: return "suicide";
  }
  return "?";
}

namespace {

struct NameVisitor {
  const char* operator()(const QueryRoutedSummary&) const {
    return "QueryRoutedSummary";
  }
  const char* operator()(const ReplicaAdded&) const { return "ReplicaAdded"; }
  const char* operator()(const MigrationExecuted&) const {
    return "MigrationExecuted";
  }
  const char* operator()(const Suicide&) const { return "Suicide"; }
  const char* operator()(const ActionDropped&) const {
    return "ActionDropped";
  }
  const char* operator()(const ServerFailed&) const { return "ServerFailed"; }
  const char* operator()(const ServerRecovered&) const {
    return "ServerRecovered";
  }
  const char* operator()(const PrimaryPromoted&) const {
    return "PrimaryPromoted";
  }
  const char* operator()(const Reseeded&) const { return "Reseeded"; }
  const char* operator()(const LinkFailed&) const { return "LinkFailed"; }
  const char* operator()(const LinkRestored&) const { return "LinkRestored"; }
  const char* operator()(const FaultInjected&) const {
    return "FaultInjected";
  }
  const char* operator()(const EpochCompleted&) const {
    return "EpochCompleted";
  }
  const char* operator()(const PhaseSpan&) const { return "PhaseSpan"; }
  const char* operator()(const StreamEpochSummary&) const {
    return "StreamEpochSummary";
  }
  const char* operator()(const QueueSaturated&) const {
    return "QueueSaturated";
  }
  const char* operator()(const TrafficShift&) const { return "TrafficShift"; }
  const char* operator()(const RuleFired&) const { return "RuleFired"; }
  const char* operator()(const SloBreach&) const { return "SloBreach"; }
  const char* operator()(const StatsFrozen&) const { return "StatsFrozen"; }
  const char* operator()(const StripeLost&) const { return "StripeLost"; }
  const char* operator()(const StripeReconstructed&) const {
    return "StripeReconstructed";
  }
};

/// One default-constructed alternative per index, so names and indices
/// can be mapped without emitting real events.
template <std::size_t... Is>
std::array<const char*, sizeof...(Is)> make_index_names(
    std::index_sequence<Is...>) {
  return {event_name(Event(std::in_place_index<Is>))...};
}

}  // namespace

const char* event_name(const Event& event) noexcept {
  return std::visit(NameVisitor{}, event);
}

const char* event_index_name(std::size_t index) noexcept {
  static const auto names =
      make_index_names(std::make_index_sequence<std::variant_size_v<Event>>{});
  return index < names.size() ? names[index] : "?";
}

Epoch event_epoch(const Event& event) noexcept {
  return std::visit([](const auto& e) { return e.epoch; }, event);
}

}  // namespace rfh
