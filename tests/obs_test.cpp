#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/event_bus.h"
#include "obs/sinks.h"
#include "obs/story.h"

namespace rfh {
namespace {

Event sample_replica_added() {
  ReplicaAdded e;
  e.epoch = 7;
  e.partition = PartitionId{3};
  e.source = ServerId{1};
  e.target = ServerId{9};
  e.cost = 2.5;
  e.why.rule = DecisionRule::kOverloadHub;
  e.why.observed = 41.0;
  e.why.threshold = 24.0;
  e.why.q_bar = 12.0;
  e.why.beta = 2.0;
  e.why.replica_count = 2;
  e.why.r_min = 2;
  return e;
}

TEST(EventBus, DisabledWithoutSinksAndEmitIsANoOp) {
  EventBus bus;
  EXPECT_FALSE(bus.enabled());
  bus.emit(ServerFailed{0, ServerId{1}});  // must not crash
  EXPECT_EQ(bus.sink_count(), 0u);
}

TEST(EventBus, DispatchesToEverySinkInOrder) {
  EventBus bus;
  CounterSink a;
  CounterSink b;
  bus.add_sink(&a);
  bus.add_sink(&b);
  EXPECT_TRUE(bus.enabled());
  bus.emit(ServerFailed{0, ServerId{1}});
  bus.emit(ServerRecovered{1, ServerId{1}});
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(b.total(), 2u);
  EXPECT_EQ(a.count<ServerFailed>(), 1u);
  EXPECT_EQ(a.count("ServerRecovered"), 1u);
}

TEST(EventBus, OwnedSinksAreFlushedOnClose) {
  std::ostringstream out;
  {
    EventBus bus;
    bus.add_sink(std::make_unique<ChromeTraceSink>(out));
    bus.emit(sample_replica_added());
  }  // destructor closes the JSON array
  const std::string trace = out.str();
  EXPECT_EQ(trace.front(), '[');
  EXPECT_NE(trace.find("]"), std::string::npos);
}

TEST(EventName, CoversEveryAlternative) {
  EXPECT_STREQ(event_name(Event(QueryRoutedSummary{})), "QueryRoutedSummary");
  EXPECT_STREQ(event_name(Event(ReplicaAdded{})), "ReplicaAdded");
  EXPECT_STREQ(event_name(Event(MigrationExecuted{})), "MigrationExecuted");
  EXPECT_STREQ(event_name(Event(Suicide{})), "Suicide");
  EXPECT_STREQ(event_name(Event(ActionDropped{})), "ActionDropped");
  EXPECT_STREQ(event_name(Event(ServerFailed{})), "ServerFailed");
  EXPECT_STREQ(event_name(Event(ServerRecovered{})), "ServerRecovered");
  EXPECT_STREQ(event_name(Event(PrimaryPromoted{})), "PrimaryPromoted");
  EXPECT_STREQ(event_name(Event(Reseeded{})), "Reseeded");
  EXPECT_STREQ(event_name(Event(LinkFailed{})), "LinkFailed");
  EXPECT_STREQ(event_name(Event(LinkRestored{})), "LinkRestored");
  EXPECT_STREQ(event_name(Event(EpochCompleted{})), "EpochCompleted");
}

TEST(EventEpoch, ReadsTheStampedEpoch) {
  EXPECT_EQ(event_epoch(Event(ServerFailed{42, ServerId{1}})), 42u);
  EXPECT_EQ(event_epoch(sample_replica_added()), 7u);
}

TEST(RingBufferSink, KeepsTheLastNInArrivalOrder) {
  RingBufferSink ring(3);
  for (std::uint32_t e = 0; e < 5; ++e) {
    ring.on_event(Event(ServerFailed{e, ServerId{e}}));
  }
  EXPECT_EQ(ring.total_events(), 5u);
  EXPECT_EQ(ring.size(), 3u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(event_epoch(events[0]), 2u);
  EXPECT_EQ(event_epoch(events[1]), 3u);
  EXPECT_EQ(event_epoch(events[2]), 4u);
}

TEST(CounterSink, CountsDropReasons) {
  CounterSink counters;
  ActionDropped dropped;
  dropped.reason = DropReason::kBandwidth;
  counters.on_event(Event(dropped));
  counters.on_event(Event(dropped));
  dropped.reason = DropReason::kStorageCap;
  counters.on_event(Event(dropped));
  EXPECT_EQ(counters.dropped(DropReason::kBandwidth), 2u);
  EXPECT_EQ(counters.dropped(DropReason::kStorageCap), 1u);
  EXPECT_EQ(counters.dropped(DropReason::kDeadTarget), 0u);
  EXPECT_EQ(counters.count<ActionDropped>(), 3u);
  EXPECT_EQ(counters.summary(), "ActionDropped=3");
}

TEST(JsonlSink, OneSelfDescribingObjectPerLine) {
  std::ostringstream out;
  JsonlSink sink(out);
  sink.on_event(sample_replica_added());
  sink.on_event(Event(ServerFailed{8, ServerId{2}}));
  std::istringstream lines(out.str());
  std::string first;
  std::string second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_EQ(first.front(), '{');
  EXPECT_EQ(first.back(), '}');
  EXPECT_NE(first.find("\"type\":\"ReplicaAdded\""), std::string::npos);
  EXPECT_NE(first.find("\"epoch\":7"), std::string::npos);
  EXPECT_NE(first.find("\"rule\":\"overload_hub\""), std::string::npos);
  EXPECT_NE(first.find("\"inequality\":\"tr >= beta*q_bar (Eq. 12)\""),
            std::string::npos);
  EXPECT_NE(second.find("\"type\":\"ServerFailed\""), std::string::npos);
}

TEST(JsonlSink, InvalidIdsSerializeAsNull) {
  ActionDropped dropped;  // default target is invalid
  dropped.partition = PartitionId{1};
  const std::string json = event_to_json(Event(dropped));
  EXPECT_NE(json.find("\"target\":null"), std::string::npos);
}

// Structural JSON validation: every brace/bracket/quote balances. This is
// what "loads in Perfetto" reduces to for a generated file (Perfetto
// accepts any well-formed trace_event JSON array).
void expect_balanced_json(const std::string& text) {
  int depth_obj = 0;
  int depth_arr = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++depth_obj; break;
      case '}': --depth_obj; EXPECT_GE(depth_obj, 0); break;
      case '[': ++depth_arr; break;
      case ']': --depth_arr; EXPECT_GE(depth_arr, 0); break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth_obj, 0);
  EXPECT_EQ(depth_arr, 0);
}

TEST(ChromeTraceSink, EmitsAWellFormedJsonArrayWithMetadata) {
  std::ostringstream out;
  {
    ChromeTraceSink sink(out);
    sink.on_event(sample_replica_added());
    EpochCompleted done;
    done.epoch = 7;
    done.total_replicas = 130;
    done.dropped_actions = 2;
    sink.on_event(Event(done));
    sink.flush();
    sink.flush();  // idempotent
  }
  const std::string trace = out.str();
  expect_balanced_json(trace);
  EXPECT_EQ(trace.front(), '[');
  // Metadata names the process; the instant event carries its args; the
  // epoch is a duration slice; counters feed the replica census track.
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  // Epoch 7 at the default 10 s/epoch => ts 70,000,000 us.
  EXPECT_NE(trace.find("\"ts\":70000000"), std::string::npos);
}

TEST(FilterSink, PassesOnlyListedTypes) {
  CounterSink counters;
  FilterSink filter(counters, "ReplicaAdded, ActionDropped");
  filter.on_event(sample_replica_added());
  filter.on_event(Event(ServerFailed{1, ServerId{0}}));
  filter.on_event(Event(ActionDropped{}));
  EXPECT_EQ(counters.total(), 2u);
  EXPECT_EQ(counters.count<ServerFailed>(), 0u);
  EXPECT_TRUE(filter.passes("ReplicaAdded"));
  EXPECT_FALSE(filter.passes("ServerFailed"));
}

TEST(FilterSink, EmptySpecPassesEverything) {
  CounterSink counters;
  FilterSink filter(counters, "");
  filter.on_event(Event(ServerFailed{1, ServerId{0}}));
  EXPECT_EQ(counters.total(), 1u);
}

TEST(Story, DescribesExplainedActions) {
  const std::string line = describe_event(sample_replica_added());
  EXPECT_NE(line.find("ReplicaAdded"), std::string::npos);
  EXPECT_NE(line.find("partition 3"), std::string::npos);
  EXPECT_NE(line.find("tr >= beta*q_bar (Eq. 12)"), std::string::npos);
}

TEST(Story, PartitionStoryFiltersByPartition) {
  std::vector<Event> events;
  events.push_back(sample_replica_added());               // partition 3
  events.push_back(Event(ServerFailed{1, ServerId{0}}));  // cluster-wide
  PrimaryPromoted promoted;
  promoted.partition = PartitionId{4};
  events.push_back(Event(promoted));
  EXPECT_EQ(partition_story(events, PartitionId{3}).size(), 1u);
  EXPECT_EQ(partition_story(events, PartitionId{4}).size(), 1u);
  EXPECT_TRUE(partition_story(events, PartitionId{9}).empty());
}

TEST(Taxonomy, NamesAreStable) {
  EXPECT_STREQ(drop_reason_name(DropReason::kBandwidth), "bandwidth");
  EXPECT_STREQ(drop_reason_name(DropReason::kStorageCap), "storage_cap");
  EXPECT_STREQ(drop_reason_name(DropReason::kNodeCap), "node_cap");
  EXPECT_STREQ(drop_reason_name(DropReason::kDeadTarget), "dead_target");
  EXPECT_STREQ(drop_reason_name(DropReason::kInvalid), "invalid");
  EXPECT_STREQ(rule_name(DecisionRule::kAvailabilityFloor),
               "availability_floor");
  EXPECT_STREQ(rule_inequality(DecisionRule::kSuicideCold),
               "tr <= delta*q_bar (Eq. 15)");
  EXPECT_STREQ(action_kind_name(ActionKind::kMigrate), "migrate");
}

}  // namespace
}  // namespace rfh
