#include "check/shrink.h"

#include <algorithm>

namespace rfh {

ShrinkResult shrink_case(const CheckCase& failing,
                         const FailurePredicate& still_fails,
                         std::size_t max_attempts) {
  ShrinkResult r;
  r.smallest = failing;

  // Accept `candidate` as the new smallest if it still fails.
  const auto try_case = [&](const CheckCase& candidate) {
    if (r.attempts >= max_attempts) return false;
    ++r.attempts;
    if (!still_fails(candidate)) return false;
    r.smallest = candidate;
    ++r.accepted;
    return true;
  };

  bool progress = true;
  while (progress && r.attempts < max_attempts) {
    progress = false;

    // 1. Fewer epochs — the strongest reduction: halve, then decrement.
    if (r.smallest.epochs > 1) {
      CheckCase cand = r.smallest;
      cand.epochs = std::max<Epoch>(1, cand.epochs / 2);
      if (cand.epochs != r.smallest.epochs && try_case(cand)) {
        progress = true;
        continue;
      }
      cand = r.smallest;
      cand.epochs -= 1;
      if (try_case(cand)) {
        progress = true;
        continue;
      }
    }

    // 2. Fewer servers (per rack, then racks per room).
    if (r.smallest.servers_per_rack > 1) {
      CheckCase cand = r.smallest;
      cand.servers_per_rack -= 1;
      if (try_case(cand)) {
        progress = true;
        continue;
      }
    }
    if (r.smallest.racks_per_room > 1) {
      CheckCase cand = r.smallest;
      cand.racks_per_room -= 1;
      if (try_case(cand)) {
        progress = true;
        continue;
      }
    }

    // 3. Fewer partitions: halve, then decrement.
    if (r.smallest.partitions > 1) {
      CheckCase cand = r.smallest;
      cand.partitions = std::max<std::uint32_t>(1, cand.partitions / 2);
      if (cand.partitions != r.smallest.partitions && try_case(cand)) {
        progress = true;
        continue;
      }
      cand = r.smallest;
      cand.partitions -= 1;
      if (try_case(cand)) {
        progress = true;
        continue;
      }
    }

    // 4. Drop fault events one at a time (last first, so scheduled
    // recoveries go before the faults they pair with).
    const auto& events = r.smallest.fault_plan.events();
    for (std::size_t drop = events.size(); drop-- > 0;) {
      CheckCase cand = r.smallest;
      FaultPlan plan;
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (i != drop) plan.add(events[i]);
      }
      cand.fault_plan = plan;
      if (try_case(cand)) {
        progress = true;
        break;
      }
    }
  }
  return r;
}

}  // namespace rfh
