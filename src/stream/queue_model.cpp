#include "stream/queue_model.h"

#include <algorithm>

#include "common/assert.h"

namespace rfh {

ServerQueue::Outcome ServerQueue::offer(double t) {
  // Retire channels that finished by t, then waiters whose service has
  // started by t (their start times were fixed when they were admitted).
  while (!busy_.empty() && busy_.top() <= t) busy_.pop();
  while (!pending_.empty() && pending_.front() <= t) pending_.pop_front();

  Outcome outcome;
  outcome.depth = static_cast<std::uint32_t>(pending_.size());

  if (channels_ == 0 || outcome.depth >= queue_cap_) {
    // Backpressure: the waiting room is full (or the server has no
    // service channels at all). The query is dropped, not queued.
    ++dropped_;
    return outcome;
  }

  double start = t;
  if (busy_.size() >= channels_) {
    // All channels busy: this arrival starts when the earliest in-flight
    // query completes (FIFO — every earlier waiter already claimed an
    // earlier completion slot).
    start = std::max(t, busy_.top());
    busy_.pop();
  }
  RFH_ASSERT(start >= t);
  if (start > t) {
    pending_.push_back(start);
    max_depth_ = std::max(
        max_depth_, static_cast<std::uint32_t>(pending_.size()));
  }
  busy_.push(start + service_ms_);
  ++accepted_;
  outcome.accepted = true;
  outcome.wait_ms = start - t;
  return outcome;
}

}  // namespace rfh
