// The "random" comparator (paper refs [4][21][22]: Dynamo, GFS, HDFS).
//
// Replicates at the clockwise ring successors of the partition's key —
// adjacent in ID space, geographically random. Grows a copy when below
// the availability floor or when the holder is overloaded (same trigger
// as the other algorithms, so all four face identical demand), but never
// migrates and never reclaims: exactly the static scheme the paper argues
// against, which is why its replica count and cost run away.
#pragma once

#include <string_view>

#include "sim/policy.h"

namespace rfh {

class RandomPolicy final : public ReplicationPolicy {
 public:
  [[nodiscard]] std::string_view name() const override { return "Random"; }
  [[nodiscard]] Actions decide(const PolicyContext& ctx) override;
};

}  // namespace rfh
