// Fig. 10 — node join, failure and recovery (RFH only).
//
// 500 epochs of uniform query load; at epoch 290, 30 of the 100 servers
// are removed at random — expressed as a FaultPlan so the injection goes
// through the same chaos path the tests and the CLI use. Paper shape:
// the copy count grows, plateaus, drops sharply at the failure, then
// recovers to the initial plateau as RFH re-replicates on the survivors.
//
// The bench also runs the same scenario once more with the causal flight
// recorder attached and reports recorder_overhead_fraction — the
// acceptance gate for "recorder-on costs <= 5% wall" lives here, next to
// the workload it is claimed for.
#include <chrono>
#include <iostream>

#include "bench_args.h"
#include "bench_report.h"
#include "fault/plan.h"
#include "harness/report.h"
#include "obs/timeline.h"

int main(int argc, char** argv) {
  // Single-cell bench: --jobs is accepted for the uniform bench
  // interface but there is nothing to fan out.
  (void)rfh::bench_jobs(argc, argv);
  rfh::BenchReport report("fig10_failure_recovery");
  rfh::Scenario s = rfh::Scenario::paper_failure_recovery();
  rfh::FaultEvent failure;
  failure.kind = rfh::FaultKind::kCrash;
  failure.at = 290;
  failure.count = 30;
  s.fault_plan.add(failure);
  using Clock = std::chrono::steady_clock;
  rfh::PolicyRun run;
  Clock::duration base_wall{};
  {
    const auto stage = report.stage("run_rfh");
    const auto t0 = Clock::now();
    run = rfh::run_policy(s, rfh::PolicyKind::kRfh);
    base_wall = Clock::now() - t0;
  }
  // Same scenario with the flight recorder attached: the wall-clock
  // delta between the two stages is the recorder's overhead.
  Clock::duration recorder_wall{};
  {
    const auto stage = report.stage("run_rfh_recorder");
    rfh::TimelineStore recorder(s.sim.partitions);
    const auto t0 = Clock::now();
    (void)rfh::run_policy(s, rfh::PolicyKind::kRfh, {}, {}, nullptr, nullptr,
                          nullptr, nullptr, &recorder);
    recorder_wall = Clock::now() - t0;
  }

  std::cout << "# Fig 10: node failure and recovery (RFH), 30 servers "
               "killed at epoch 290\n";
  std::vector<rfh::NamedSeries> series;
  series.push_back(rfh::NamedSeries{
      "RFH_replicas",
      rfh::extract_u32(run.series, &rfh::EpochMetrics::total_replicas)});
  series.push_back(rfh::NamedSeries{
      "RFH_unserved_fraction",
      rfh::extract(run.series, &rfh::EpochMetrics::unserved_fraction)});
  rfh::write_csv(std::cout, series);

  // Shape summary: plateau before, trough at the failure, tail after.
  auto mean_over = [&](std::size_t lo, std::size_t hi) {
    double sum = 0.0;
    for (std::size_t e = lo; e < hi; ++e) {
      sum += run.series[e].total_replicas;
    }
    return sum / static_cast<double>(hi - lo);
  };
  std::cout << "# plateau(240-289)=" << mean_over(240, 290)
            << " trough(290-299)=" << mean_over(290, 300)
            << " recovered(450-499)=" << mean_over(450, 500) << "\n";

  report.add_metric("plateau_replicas", mean_over(240, 290));
  report.add_metric("trough_replicas", mean_over(290, 300));
  report.add_metric("recovered_replicas", mean_over(450, 500));
  report.add_metric("faults_injected",
                    static_cast<double>(run.faults_injected));
  report.add_metric("servers_killed", static_cast<double>(run.killed.size()));
  const double base_ms =
      std::chrono::duration<double, std::milli>(base_wall).count();
  const double rec_ms =
      std::chrono::duration<double, std::milli>(recorder_wall).count();
  const double overhead = base_ms > 0.0 ? (rec_ms - base_ms) / base_ms : 0.0;
  std::cout << "# recorder overhead: " << rec_ms << " vs " << base_ms
            << " ms (" << overhead * 100.0 << "%)\n";
  report.add_metric("recorder_overhead_fraction", overhead);
  report.write_file();
  return 0;
}
