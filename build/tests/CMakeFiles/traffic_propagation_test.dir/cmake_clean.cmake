file(REMOVE_RECURSE
  "CMakeFiles/traffic_propagation_test.dir/traffic_propagation_test.cpp.o"
  "CMakeFiles/traffic_propagation_test.dir/traffic_propagation_test.cpp.o.d"
  "traffic_propagation_test"
  "traffic_propagation_test.pdb"
  "traffic_propagation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
