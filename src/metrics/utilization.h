// Replica utilization rate (paper Eqs. 20-23).
//
// Eq. 20 fills a node's replicas sequentially against the arriving
// traffic: U = min(1, max(0, (tr - sum of upstream capacities) / C)).
// Because the simulator enforces at most one copy of a partition per
// server and tracks the absorbed amount per copy directly, a copy's
// utilization is simply served / capacity, which is exactly Eq. 20's
// value with the sequential fill already performed. Eq. 21 averages over
// copies; `include_primaries` controls whether the primary copy counts
// (the paper measures *replicas*, so the default excludes it).
#pragma once

#include "sim/cluster.h"
#include "sim/traffic.h"
#include "topology/topology.h"

namespace rfh {

struct UtilizationOptions {
  bool include_primaries = false;
};

/// Average replica utilization over all copies, in [0, 1]; 0 when there
/// are no qualifying copies.
double replica_utilization(const EpochTraffic& traffic,
                           const ClusterState& cluster,
                           const Topology& topology,
                           const UtilizationOptions& options = {});

/// Utilization of the single copy of p on s (Eq. 20): served / capacity.
double copy_utilization(const EpochTraffic& traffic, const Topology& topology,
                        PartitionId p, ServerId s);

}  // namespace rfh
