#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace rfh {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  // Forking must depend only on the original seed + tag, not on how many
  // values the parent has drawn.
  Rng parent1(7);
  Rng parent2(7);
  parent2.next();
  parent2.next();
  Rng f1 = parent1.fork(42);
  Rng f2 = parent2.fork(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(f1.next(), f2.next());
  }
}

TEST(Rng, ForkDifferentTagsDiverge) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(5);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform(bound), bound);
    }
  }
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform(1), 0u);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInHalfOpenUnitInterval) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRealMeanNearHalf) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform_real();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.poisson(0.0), 0u);
  }
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(11);
  const int n = 20000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = static_cast<double>(rng.poisson(mean));
    sum += v;
    sum2 += v * v;
  }
  const double m = sum / n;
  const double var = sum2 / n - m * m;
  // Poisson: mean == variance == lambda. 5-sigma-ish statistical slack.
  EXPECT_NEAR(m, mean, 5.0 * std::sqrt(mean / n) + 0.55);
  EXPECT_NEAR(var, mean, 0.15 * mean + 0.5);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         ::testing::Values(0.3, 1.0, 4.7, 30.0, 63.9, 64.1,
                                           300.0, 2000.0));

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> orig = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(13);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  const std::vector<int> orig = v;
  rng.shuffle(std::span<int>(v));
  EXPECT_NE(v, orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(14);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const std::size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(15);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementEmpty) {
  Rng rng(16);
  EXPECT_TRUE(rng.sample_without_replacement(10, 0).empty());
}

TEST(DiscreteSampler, ProportionsMatchWeights) {
  const std::vector<double> weights{1.0, 3.0, 6.0};
  DiscreteSampler sampler(weights);
  Rng rng(17);
  std::vector<int> counts(3, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    ++counts[sampler.sample(rng)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  const std::vector<double> weights{0.0, 1.0, 0.0};
  DiscreteSampler sampler(weights);
  Rng rng(18);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sampler.sample(rng), 1u);
  }
}

TEST(DiscreteSampler, ProbabilityNormalizes) {
  const std::vector<double> weights{2.0, 3.0, 5.0};
  DiscreteSampler sampler(weights);
  double total = 0.0;
  for (std::size_t i = 0; i < sampler.size(); ++i) {
    total += sampler.probability(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(sampler.probability(0), 0.2, 1e-12);
}

TEST(DiscreteSamplerDeath, RejectsEmptyAndNegative) {
  EXPECT_DEATH(DiscreteSampler(std::vector<double>{}), "");
  EXPECT_DEATH(DiscreteSampler(std::vector<double>{1.0, -0.5}), "");
  EXPECT_DEATH(DiscreteSampler(std::vector<double>{0.0, 0.0}), "");
}

class ZipfTest : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(ZipfTest, ProbabilitiesAreMonotoneAndNormalized) {
  const auto [n, s] = GetParam();
  ZipfSampler zipf(n, s);
  double total = 0.0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += zipf.probability(rank);
    if (rank > 0 && s > 0.0) {
      EXPECT_GE(zipf.probability(rank - 1), zipf.probability(rank));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(ZipfTest, HeadToTailRatioMatchesPowerLaw) {
  const auto [n, s] = GetParam();
  ZipfSampler zipf(n, s);
  const double expected =
      std::pow(static_cast<double>(n), s);  // p(rank 1)/p(rank n)
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(n - 1), expected,
              1e-6 * expected);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndExponents, ZipfTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 64, 1000),
                       ::testing::Values(0.0, 0.5, 0.8, 1.2)));

TEST(ZipfSampler, UniformWhenExponentZero) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t rank = 0; rank < 10; ++rank) {
    EXPECT_NEAR(zipf.probability(rank), 0.1, 1e-12);
  }
}

}  // namespace
}  // namespace rfh
