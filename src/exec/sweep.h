// Deterministic parallel sweep execution.
//
// A sweep is a grid of independent cells — (scenario, policy, seed)
// triples, optionally with per-cell RFH options and failure schedules —
// each of which is one full run_policy() simulation. Cells share nothing
// mutable: every cell builds its own World, workload stream and RNG
// streams forked from its scenario seed, gets its own MetricRegistry and
// trace sink when collection is enabled, and writes only its own result
// slot. The SweepRunner fans cells out across a work-stealing ThreadPool
// and merges results in cell-index order, so a parallel sweep is
// bit-identical to the serial one — enforced by
// tests/determinism_test.cpp, which byte-compares sweep_results_json()
// (and per-cell traces and metric dumps) across --jobs values.
//
// Seed-forking rules (DESIGN.md §11): the runner never draws randomness
// itself. Each cell's Simulation forks its subsystem streams
// (workload / policy / failures) from scenario.sim.seed with fixed tags,
// and the ChaosController forks its own stream from the same seed, so
// two cells with equal scenarios produce equal runs no matter which
// worker executes them or in what order.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "harness/runner.h"

namespace rfh {

class MetricRegistry;

/// One independent sweep cell.
struct SweepCell {
  /// Free-form identifier carried into results and JSON ("fig3/flash",
  /// "seed=7", ...). Not required to be unique; cells are keyed by index.
  std::string label;
  Scenario scenario;
  PolicyKind policy = PolicyKind::kRfh;
  RfhPolicy::Options rfh;
  std::vector<FailureEvent> failures;
};

struct SweepCellResult {
  std::size_t index = 0;
  std::string label;
  PolicyKind policy = PolicyKind::kRfh;
  std::uint64_t seed = 0;
  PolicyRun run;
  /// rfh-metrics/1 JSON dump of the cell's own registry (empty unless
  /// SweepOptions::collect_metrics).
  std::string metrics_json;
  /// JSONL event trace from the cell's own sink (empty unless
  /// SweepOptions::collect_traces).
  std::string trace_jsonl;
  /// Causal flight record (obs/timeline.h) of the cell's run: the
  /// store's FNV-1a digest and its JSONL dump (zero/empty unless
  /// SweepOptions::collect_timeline). Byte-identical across --jobs.
  std::uint64_t timeline_digest = 0;
  std::string timeline_jsonl;
};

struct SweepOptions {
  /// Worker threads: 1 (default) runs cells inline on the calling thread
  /// in index order — the serial baseline; 0 asks the hardware
  /// (ThreadPool::default_jobs()); N > 1 uses a pool of N.
  unsigned jobs = 1;
  /// Give each cell its own MetricRegistry and keep its JSON dump.
  bool collect_metrics = false;
  /// Give each cell its own JsonlSink and keep the trace text.
  bool collect_traces = false;
  /// Give each cell its own TimelineStore recorder and keep its digest
  /// and JSONL dump (bounded memory, unlike collect_traces).
  bool collect_timeline = false;
  /// Sweep-level telemetry (rfh_sweep_* / rfh_pool_*); optional, bumped
  /// after the fan-out completes so it never races cell execution.
  MetricRegistry* registry = nullptr;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Execute every cell and return results in cell-index order. A cell
  /// that throws rethrows here (from the lowest-index failing cell).
  [[nodiscard]] std::vector<SweepCellResult> run(
      std::span<const SweepCell> cells) const;

  /// The thread count run() will actually use.
  [[nodiscard]] unsigned effective_jobs() const noexcept;

 private:
  [[nodiscard]] SweepCellResult run_cell(const SweepCell& cell,
                                         std::size_t index) const;

  SweepOptions options_;
};

/// Canonical JSON (schema "rfh-sweep/1") of merged results in cell-index
/// order: label, policy, seed, epochs, faults injected, tail means of the
/// headline series and an FNV-1a digest over every per-epoch metric
/// field. Contains no wall-clock, so serial and parallel runs of the same
/// grid serialize byte-identically.
[[nodiscard]] std::string sweep_results_json(
    std::span<const SweepCellResult> results);

/// FNV-1a digest over the canonical text form of every field of every
/// EpochMetrics in the series (printf %.17g for doubles, decimal for
/// counters) — the series fingerprint the differential tests compare.
[[nodiscard]] std::uint64_t series_digest(std::span<const EpochMetrics> series);

/// The paper's standard four-policy comparison executed as a sweep on a
/// ThreadPool. jobs as in SweepOptions (0 = hardware). Bit-identical to
/// run_comparison_sequential for every jobs value.
[[nodiscard]] ComparativeResult run_comparison_pooled(
    const Scenario& scenario, const std::vector<FailureEvent>& failures = {},
    unsigned jobs = 0);

}  // namespace rfh
