// Event-emission overhead (google-benchmark): guards the observability
// subsystem's zero-cost-when-disabled claim.
//
//  * BM_SimStep/{off,counter,jsonl}: a full Simulation::step with no sink,
//    an aggregating CounterSink, and a JSONL sink writing to a discarded
//    stream. The "off" and "counter" variants must be within noise of each
//    other; acceptance requires instrumentation overhead < 1% when no sink
//    is installed.
//  * BM_EmitDisabled / BM_EmitRingBuffer: the raw cost of one emit()
//    through an empty vs. populated bus.
#include <benchmark/benchmark.h>

#include <sstream>

#include "harness/scenario.h"
#include "obs/sinks.h"
#include "sim/engine.h"

namespace {

enum class SinkMode { kOff, kCounter, kJsonl };

void run_sim_steps(benchmark::State& state, SinkMode mode) {
  rfh::Scenario scenario = rfh::Scenario::paper_random_query();
  auto sim = rfh::make_simulation(scenario, rfh::PolicyKind::kRfh);

  rfh::CounterSink counters;
  std::ostringstream discard;
  rfh::JsonlSink jsonl(discard);
  if (mode == SinkMode::kCounter) sim->events().add_sink(&counters);
  if (mode == SinkMode::kJsonl) sim->events().add_sink(&jsonl);

  for (auto _ : state) {
    benchmark::DoNotOptimize(sim->step());
    if (discard.tellp() > (1 << 22)) {
      discard.str({});  // keep the discard buffer from growing unboundedly
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_SimStep_TracingOff(benchmark::State& state) {
  run_sim_steps(state, SinkMode::kOff);
}
BENCHMARK(BM_SimStep_TracingOff)->Unit(benchmark::kMicrosecond);

void BM_SimStep_CounterSink(benchmark::State& state) {
  run_sim_steps(state, SinkMode::kCounter);
}
BENCHMARK(BM_SimStep_CounterSink)->Unit(benchmark::kMicrosecond);

void BM_SimStep_JsonlSink(benchmark::State& state) {
  run_sim_steps(state, SinkMode::kJsonl);
}
BENCHMARK(BM_SimStep_JsonlSink)->Unit(benchmark::kMicrosecond);

void BM_EmitDisabled(benchmark::State& state) {
  rfh::EventBus bus;
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    bus.emit(rfh::ServerFailed{epoch++, rfh::ServerId{3}});
    benchmark::DoNotOptimize(bus);
  }
}
BENCHMARK(BM_EmitDisabled);

void BM_EmitRingBuffer(benchmark::State& state) {
  rfh::EventBus bus;
  rfh::RingBufferSink ring(1024);
  bus.add_sink(&ring);
  std::uint32_t epoch = 0;
  for (auto _ : state) {
    bus.emit(rfh::ServerFailed{epoch++, rfh::ServerId{3}});
    benchmark::DoNotOptimize(bus);
  }
}
BENCHMARK(BM_EmitRingBuffer);

void BM_EventToJson(benchmark::State& state) {
  rfh::ReplicaAdded event{12, rfh::PartitionId{5}, rfh::ServerId{1},
                          rfh::ServerId{9}, 3.25, {}};
  event.why.rule = rfh::DecisionRule::kOverloadHub;
  const rfh::Event variant(event);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rfh::event_to_json(variant));
  }
}
BENCHMARK(BM_EventToJson);

}  // namespace
