#include "common/smoothing.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace rfh {
namespace {

TEST(Ewma, FirstObservationInitializesDirectly) {
  Ewma ewma(0.2);
  EXPECT_FALSE(ewma.initialized());
  EXPECT_DOUBLE_EQ(ewma.update(10.0), 10.0);
  EXPECT_TRUE(ewma.initialized());
}

TEST(Ewma, PaperFormulaOrientation) {
  // v_t = alpha * v_{t-1} + (1 - alpha) * x_t with alpha weighting history
  // (Eqs. 10-11).
  Ewma ewma(0.2);
  ewma.update(10.0);
  EXPECT_DOUBLE_EQ(ewma.update(0.0), 0.2 * 10.0);
  EXPECT_DOUBLE_EQ(ewma.update(5.0), 0.2 * 2.0 + 0.8 * 5.0);
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma ewma(0.7);
  ewma.update(0.0);
  for (int i = 0; i < 200; ++i) ewma.update(42.0);
  EXPECT_NEAR(ewma.value(), 42.0, 1e-9);
}

TEST(Ewma, HighAlphaAdaptsSlowly) {
  Ewma fast(0.1);  // history weight 0.1 -> adapts fast
  Ewma slow(0.9);  // history weight 0.9 -> adapts slowly
  fast.update(0.0);
  slow.update(0.0);
  fast.update(100.0);
  slow.update(100.0);
  EXPECT_GT(fast.value(), slow.value());
}

TEST(Ewma, ResetClearsState) {
  Ewma ewma(0.5);
  ewma.update(7.0);
  ewma.reset();
  EXPECT_FALSE(ewma.initialized());
  EXPECT_DOUBLE_EQ(ewma.update(3.0), 3.0);
}

TEST(Ewma, StaysWithinObservedRange) {
  Ewma ewma(0.3);
  double lo = 1e18;
  double hi = -1e18;
  const double inputs[] = {3.0, 7.0, 1.0, 9.0, 4.0, 4.0, 2.0};
  for (const double x : inputs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    const double v = ewma.update(x);
    EXPECT_GE(v, lo - 1e-12);
    EXPECT_LE(v, hi + 1e-12);
  }
}

TEST(EwmaDeath, RejectsDegenerateAlpha) {
  EXPECT_DEATH(Ewma(0.0), "");
  EXPECT_DEATH(Ewma(1.0), "");
  EXPECT_DEATH(Ewma(-0.5), "");
}

}  // namespace
}  // namespace rfh
