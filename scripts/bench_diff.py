#!/usr/bin/env python3
"""Compare two rfh-bench-report JSON files and flag regressions.

Usage:
  scripts/bench_diff.py OLD.json NEW.json [--time-threshold 0.10]
                                          [--metric-threshold 0.05]
                                          [--fail-on-metric-drift]
                                          [--per-dc]

A *time regression* is a stage (or the total) whose wall clock grew by
more than --time-threshold (relative) AND by more than 1 ms (absolute —
micro-stages jitter). A *metric drift* is a summary metric that moved by
more than --metric-threshold relative to the old value; drifts are always
printed but only fail the run with --fail-on-metric-drift, because
deliberate algorithm changes move metrics legitimately.

Stream-aware comparison: latency metrics (*_ms), queue depth and the
drop/block counters are one-sided — only an *increase* counts as drift
(getting faster or dropping less is never flagged). Per-requester-DC
summaries (the *_dc_<name>_* metrics bench_sla_latency emits) are
collapsed into one worst-DC row per metric group; pass --per-dc for the
full expansion.

Exit status: 0 clean, 1 regression detected, 2 bad input.
"""

import argparse
import json
import sys

SCHEMA = "rfh-bench-report/1"
ABS_FLOOR_MS = 1.0


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"bench_diff: cannot read {path}: {exc}")
    if data.get("schema") != SCHEMA:
        sys.exit(f"bench_diff: {path}: expected schema {SCHEMA!r}, "
                 f"got {data.get('schema')!r}")
    for key in ("bench", "stages", "metrics", "total_wall_ms"):
        if key not in data:
            sys.exit(f"bench_diff: {path}: missing field {key!r}")
    return data


def rel_change(old, new):
    if old == 0:
        return float("inf") if new != 0 else 0.0
    return (new - old) / abs(old)


# Metrics where only growth is bad: tail/mean latencies, queueing depth,
# and the loss counters. Everything else drifts symmetrically.
ONE_SIDED_MARKERS = ("_ms", "max_queue_depth", "stream_dropped",
                     "stream_blocked", "drop_fraction")


def higher_is_worse(name):
    return any(name.endswith(m) or m + "_" in name for m in ONE_SIDED_MARKERS)


def is_drift(name, change, threshold):
    if change == float("inf"):
        return True
    if higher_is_worse(name):
        return change > threshold
    return abs(change) > threshold


def dc_group(name):
    """'rfh_load_1.0x_dc_us-east_p99_ms' -> ('rfh_load_1.0x_dc_*_p99_ms',
    'us-east'); None for metrics without a per-DC component."""
    if "_dc_" not in name:
        return None
    prefix, rest = name.split("_dc_", 1)
    if "_" not in rest:
        return None
    # The metric suffix is the trailing known-shaped tail (e.g. p99_ms);
    # DC names themselves never contain "_p" percentile tails.
    dc, suffix = rest.split("_p", 1)
    return (f"{prefix}_dc_*_p{suffix}", dc)


def main():
    parser = argparse.ArgumentParser(
        description="Compare two rfh-bench-report JSON files.")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--time-threshold", type=float, default=0.10,
                        help="relative wall-clock growth that counts as a "
                             "regression (default 0.10 = +10%%)")
    parser.add_argument("--metric-threshold", type=float, default=0.05,
                        help="relative metric drift worth reporting "
                             "(default 0.05 = 5%%)")
    parser.add_argument("--fail-on-metric-drift", action="store_true",
                        help="exit 1 on metric drift, not just time "
                             "regressions")
    parser.add_argument("--per-dc", action="store_true",
                        help="print every per-DC metric row instead of "
                             "collapsing each group to its worst DC")
    args = parser.parse_args()

    old = load_report(args.old)
    new = load_report(args.new)
    if old["bench"] != new["bench"]:
        sys.exit(f"bench_diff: comparing different benches: "
                 f"{old['bench']!r} vs {new['bench']!r}")

    regressions = []
    drifts = []

    print(f"bench: {old['bench']}")
    print(f"{'stage':<28} {'old ms':>12} {'new ms':>12} {'change':>9}")

    old_stages = {s["name"]: s["wall_ms"] for s in old["stages"]}
    new_stages = {s["name"]: s["wall_ms"] for s in new["stages"]}
    rows = [(name, old_stages.get(name), new_stages.get(name))
            for name in dict.fromkeys(list(old_stages) + list(new_stages))]
    rows.append(("TOTAL", old["total_wall_ms"], new["total_wall_ms"]))

    for name, before, after in rows:
        if before is None or after is None:
            side = "added" if before is None else "removed"
            print(f"{name:<28} {'-' if before is None else f'{before:12.3f}'}"
                  f" {'-' if after is None else f'{after:12.3f}'}   ({side})")
            continue
        change = rel_change(before, after)
        flag = ""
        if change > args.time_threshold and after - before > ABS_FLOOR_MS:
            flag = "  << TIME REGRESSION"
            regressions.append(name)
        print(f"{name:<28} {before:12.3f} {after:12.3f} {change:+8.1%}{flag}")

    print()
    print(f"{'metric':<40} {'old':>14} {'new':>14} {'change':>9}")
    names = dict.fromkeys(list(old["metrics"]) + list(new["metrics"]))

    def compare_row(name, label=None):
        before = old["metrics"].get(name)
        after = new["metrics"].get(name)
        label = label or name
        if before is None or after is None:
            side = "added" if before is None else "removed"
            print(f"{label:<40} {'-':>14} {'-':>14}   ({side})")
            return
        change = rel_change(before, after)
        flag = ""
        if is_drift(name, change, args.metric_threshold):
            flag = "  << METRIC DRIFT"
            drifts.append(label)
        print(f"{label:<40} {before:14.6g} {after:14.6g} "
              f"{change:+8.1%}{flag}")

    # Collapse per-DC summary metrics to one worst-DC row per group
    # (their drift direction is one-sided, so "worst" = largest growth).
    groups = {}
    for name in names:
        parsed = dc_group(name)
        if parsed is None or args.per_dc:
            compare_row(name)
            continue
        groups.setdefault(parsed[0], []).append((name, parsed[1]))
    for pattern, members in groups.items():
        worst = None
        for name, dc in members:
            before = old["metrics"].get(name)
            after = new["metrics"].get(name)
            if before is None or after is None:
                continue
            change = rel_change(before, after)
            if worst is None or change > worst[1]:
                worst = (name, change, dc)
        if worst is None:
            print(f"{pattern:<40} {'-':>14} {'-':>14}   "
                  f"({len(members)} DCs, set changed)")
            continue
        compare_row(worst[0],
                    label=f"{pattern} [worst={worst[2]}/{len(members)}]")

    failed = bool(regressions) or (args.fail_on_metric_drift and bool(drifts))
    print()
    if regressions:
        print(f"time regressions: {', '.join(regressions)}")
    if drifts:
        print(f"metric drifts: {', '.join(drifts)}")
    if not regressions and not drifts:
        print("no regressions, no metric drift")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
