file(REMOVE_RECURSE
  "CMakeFiles/rfh_ring.dir/chord.cpp.o"
  "CMakeFiles/rfh_ring.dir/chord.cpp.o.d"
  "CMakeFiles/rfh_ring.dir/hash.cpp.o"
  "CMakeFiles/rfh_ring.dir/hash.cpp.o.d"
  "CMakeFiles/rfh_ring.dir/rendezvous.cpp.o"
  "CMakeFiles/rfh_ring.dir/rendezvous.cpp.o.d"
  "CMakeFiles/rfh_ring.dir/ring.cpp.o"
  "CMakeFiles/rfh_ring.dir/ring.cpp.o.d"
  "librfh_ring.a"
  "librfh_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rfh_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
