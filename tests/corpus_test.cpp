// Replays every minimized case committed under tests/data/corpus/
// through the differential harness. Each file is a previously
// interesting scenario (shrunk by src/check/shrink.h) that must stay
// divergence-free: a red run here means a behavioural change reached one
// of the regression scenarios the corpus pins down.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "check/case.h"
#include "check/diff.h"
#include "fault/invariants.h"
#include "harness/runner.h"
#include "obs/timeline.h"

namespace rfh {
namespace {

// The five named hostile scenarios the corpus must carry (ISSUE 9):
// correlated regional outage, ring-splitting double partition, cascading
// overload, Byzantine stale statistics, and flapping-link churn under
// stream load.
constexpr const char* kHostileCases[] = {
    "zone_outage_regional",   "ring_split_partition",
    "cascading_overload",     "byzantine_stale_stats",
    "flap_churn_stream",
};

std::vector<std::string> corpus_files() {
  const std::filesystem::path dir =
      std::filesystem::path(RFH_TEST_DATA_DIR) / "corpus";
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(Corpus, HoldsTheSeedScenarios) {
  const std::vector<std::string> files = corpus_files();
  EXPECT_GE(files.size(), 5u);
  // The two scenarios the harness was built to pin down must stay in the
  // corpus: route-memo invalidation under datacenter death, and the
  // Eq. 15-vs-Eq. 14 suicide/availability boundary.
  const auto holds = [&](const char* name) {
    return std::any_of(files.begin(), files.end(), [&](const std::string& f) {
      return f.find(name) != std::string::npos;
    });
  };
  EXPECT_TRUE(holds("route_memo_dc_outage"));
  EXPECT_TRUE(holds("suicide_availability_boundary"));
}

TEST(Corpus, EveryCaseReplaysDivergenceFree) {
  for (const std::string& file : corpus_files()) {
    const CheckCase::ParseResult parsed = CheckCase::load(file);
    ASSERT_TRUE(parsed.ok) << file << ": " << parsed.error;
    const DiffOutcome outcome = run_check_case(parsed.value);
    EXPECT_TRUE(outcome.ok) << file << ": " << outcome.to_string();
  }
}

TEST(Corpus, FilesAreCanonicalSerializations) {
  // Committed corpus files round-trip bit-exactly, so regenerating a
  // case never produces spurious diffs.
  for (const std::string& file : corpus_files()) {
    const CheckCase::ParseResult parsed = CheckCase::load(file);
    ASSERT_TRUE(parsed.ok) << file << ": " << parsed.error;
    const CheckCase::ParseResult again =
        CheckCase::from_json(parsed.value.to_json());
    ASSERT_TRUE(again.ok) << file;
    EXPECT_EQ(again.value, parsed.value) << file;
  }
}

std::string hostile_path(const char* name) {
  return (std::filesystem::path(RFH_TEST_DATA_DIR) / "corpus" /
          (std::string(name) + ".json"))
      .string();
}

Scenario hostile_scenario(const char* name) {
  const CheckCase::ParseResult parsed = CheckCase::load(hostile_path(name));
  EXPECT_TRUE(parsed.ok) << name << ": " << parsed.error;
  return parsed.value.to_scenario();
}

/// Replay one hostile case under the invariant checker with a flight
/// recorder attached; the store and checker outlive the run.
PolicyRun hostile_fly(const Scenario& scenario, TimelineStore& store,
                      InvariantChecker& checker) {
  return run_policy(scenario, PolicyKind::kRfh, {}, RfhPolicy::Options{},
                    /*trace_sink=*/nullptr, /*metrics=*/nullptr,
                    /*profiler=*/nullptr, &checker, &store);
}

bool is_fault(const TimelineRecord& rec, const char* kind) {
  return rec.type == event_type_index<FaultInjected>() &&
         rec.label != nullptr && std::strcmp(rec.label, kind) == 0;
}

std::uint64_t kind_count(const PolicyRun& run, FaultKind kind) {
  return run.faults_by_kind[static_cast<std::size_t>(kind)];
}

TEST(HostileCorpus, CorpusCarriesAllFiveNamedScenarios) {
  for (const char* name : kHostileCases) {
    EXPECT_TRUE(std::filesystem::exists(hostile_path(name))) << name;
  }
}

// Every hostile plan must run to completion with zero invariant
// violations: the chaos is allowed to hurt availability, never to put
// the cluster into an inconsistent state.
TEST(HostileCorpus, EveryScenarioHoldsEveryInvariant) {
  for (const char* name : kHostileCases) {
    const Scenario scenario = hostile_scenario(name);
    TimelineStore store(scenario.sim.partitions);
    InvariantChecker checker(InvariantChecker::Mode::kRecord);
    const PolicyRun run = hostile_fly(scenario, store, checker);
    EXPECT_GT(run.faults_injected, 0u) << name << ": plan never fired";
    EXPECT_EQ(checker.epochs_checked(),
              static_cast<std::size_t>(scenario.epochs))
        << name;
    EXPECT_TRUE(checker.violations().empty())
        << name << ":\n" << checker.summary();
  }
}

// Correlated regional outage: one zoneoutage injection, every kill of
// that epoch parented to it, and the census count stamped on the record
// matches the number of ServerFailed children.
TEST(HostileCorpus, ZoneOutageChainsEveryRegionalKillToTheInjection) {
  const Scenario scenario = hostile_scenario("zone_outage_regional");
  TimelineStore store(scenario.sim.partitions);
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun run = hostile_fly(scenario, store, checker);
  EXPECT_EQ(kind_count(run, FaultKind::kZoneOutage), 1u);

  const TimelineQuery query(store);
  const TimelineRecord* injection = nullptr;
  for (const TimelineRecord& rec : query.records()) {
    if (is_fault(rec, "zoneoutage")) injection = &rec;
  }
  ASSERT_NE(injection, nullptr);
  EXPECT_EQ(injection->epoch, 6u);
  EXPECT_DOUBLE_EQ(injection->b, 3.0);  // zone index (Asia)
  std::size_t zone_kills = 0;
  for (const TimelineRecord& rec : query.records()) {
    if (rec.type == event_type_index<ServerFailed>() &&
        rec.parent == injection->id) {
      ++zone_kills;
    }
  }
  EXPECT_EQ(zone_kills, static_cast<std::size_t>(injection->a));
  EXPECT_GT(zone_kills, 0u);
  // The zone revives at epoch 14 (recover_after=8).
  std::size_t recoveries = 0;
  for (const TimelineRecord& rec : query.records()) {
    if (rec.type == event_type_index<ServerRecovered>() &&
        rec.epoch == 14u) {
      ++recoveries;
    }
  }
  EXPECT_EQ(recoveries, zone_kills);
}

// Ring-splitting partition: both backbone cuts (C-F and B-D) are
// recorded — together they force every transcontinental path through
// the single I-D chokepoint — each LinkFailed chains to its own
// injection, and both links come back at the restore epoch. (A cut
// that would fully disconnect the graph is refused by the chaos
// layer's partition guard, so the split stops one link short.)
TEST(HostileCorpus, RingSplitRecordsBothCutsAndBothRestores) {
  const Scenario scenario = hostile_scenario("ring_split_partition");
  TimelineStore store(scenario.sim.partitions);
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun run = hostile_fly(scenario, store, checker);
  EXPECT_EQ(kind_count(run, FaultKind::kLinkDown), 2u);

  const TimelineQuery query(store);
  std::size_t failed = 0;
  std::size_t restored = 0;
  for (const TimelineRecord& rec : query.records()) {
    if (rec.type == event_type_index<LinkFailed>()) {
      ++failed;
      const std::vector<TimelineRecord> chain = query.chain(rec.id);
      ASSERT_EQ(chain.size(), 2u);
      EXPECT_TRUE(is_fault(chain.front(), "linkdown"));
      EXPECT_EQ(chain.front().epoch, 5u);
    }
    if (rec.type == event_type_index<LinkRestored>()) {
      ++restored;
      EXPECT_EQ(rec.epoch, 17u);
    }
  }
  EXPECT_EQ(failed, 2u);
  EXPECT_EQ(restored, 2u);
}

// Cascading overload: the flash crowd lands first, then the crash wave
// hits the already-loaded cluster; every crash kill chains back to the
// crash injection, not to the flash crowd.
TEST(HostileCorpus, CascadingOverloadKeepsCrashAndFlashChainsSeparate) {
  const Scenario scenario = hostile_scenario("cascading_overload");
  TimelineStore store(scenario.sim.partitions);
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun run = hostile_fly(scenario, store, checker);
  EXPECT_EQ(kind_count(run, FaultKind::kFlashCrowd), 1u);
  EXPECT_EQ(kind_count(run, FaultKind::kCrash), 1u);

  const TimelineQuery query(store);
  const TimelineRecord* flash = nullptr;
  const TimelineRecord* crash = nullptr;
  for (const TimelineRecord& rec : query.records()) {
    if (is_fault(rec, "flashcrowd")) flash = &rec;
    if (is_fault(rec, "crash")) crash = &rec;
  }
  ASSERT_NE(flash, nullptr);
  ASSERT_NE(crash, nullptr);
  EXPECT_EQ(flash->epoch, 4u);
  EXPECT_DOUBLE_EQ(flash->b, 5.0);  // demand multiplier
  EXPECT_EQ(crash->epoch, 8u);
  std::size_t crash_kills = 0;
  for (const TimelineRecord& rec : query.records()) {
    if (rec.type != event_type_index<ServerFailed>()) continue;
    EXPECT_EQ(rec.parent, crash->id)
        << "kill chained to the wrong disturbance";
    ++crash_kills;
  }
  EXPECT_EQ(crash_kills, 4u);
}

// Byzantine stale statistics: three servers freeze their smoothed load
// series at epoch 4 and thaw at epoch 22; each transition is recorded
// once, and the frozen servers never diverge the replay (the corpus
// divergence test covers the oracle side).
TEST(HostileCorpus, StaleStatsFreezeAndThawBracketTheWindow) {
  const Scenario scenario = hostile_scenario("byzantine_stale_stats");
  TimelineStore store(scenario.sim.partitions);
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun run = hostile_fly(scenario, store, checker);
  EXPECT_EQ(kind_count(run, FaultKind::kStaleStats), 1u);

  const TimelineQuery query(store);
  std::vector<std::uint32_t> frozen_servers;
  std::vector<std::uint32_t> thawed_servers;
  for (const TimelineRecord& rec : query.records()) {
    if (rec.type != event_type_index<StatsFrozen>()) continue;
    if (rec.a == 1.0) {
      EXPECT_EQ(rec.epoch, 4u);
      frozen_servers.push_back(rec.server);
    } else {
      EXPECT_EQ(rec.epoch, 22u);
      thawed_servers.push_back(rec.server);
    }
  }
  std::sort(frozen_servers.begin(), frozen_servers.end());
  std::sort(thawed_servers.begin(), thawed_servers.end());
  EXPECT_EQ(frozen_servers.size(), 3u);
  EXPECT_EQ(thawed_servers, frozen_servers)
      << "every frozen server must thaw, and nothing else";
  // The freezes chain to the stalestats injection.
  const TimelineRecord* injection = nullptr;
  for (const TimelineRecord& rec : query.records()) {
    if (is_fault(rec, "stalestats")) injection = &rec;
  }
  ASSERT_NE(injection, nullptr);
  for (const TimelineRecord& rec : query.records()) {
    if (rec.type == event_type_index<StatsFrozen>() && rec.a == 1.0) {
      EXPECT_EQ(rec.parent, injection->id);
    }
  }
}

// Flapping link + rolling churn under stream load: the flap re-injects
// on its period, every churn wave's kills are parented to that wave's
// injection, and chains never cross waves.
TEST(HostileCorpus, FlapChurnKeepsWaveChainsSeparate) {
  const Scenario scenario = hostile_scenario("flap_churn_stream");
  TimelineStore store(scenario.sim.partitions);
  InvariantChecker checker(InvariantChecker::Mode::kRecord);
  const PolicyRun run = hostile_fly(scenario, store, checker);
  EXPECT_GE(kind_count(run, FaultKind::kLinkFlap), 2u);
  // Waves at epochs 6, 10, 14, 18 (`until` is exclusive).
  EXPECT_EQ(kind_count(run, FaultKind::kChurn), 4u);

  const TimelineQuery query(store);
  for (const TimelineRecord& rec : query.records()) {
    if (rec.type != event_type_index<ServerFailed>()) continue;
    const TimelineRecord* parent = query.find(rec.parent);
    ASSERT_NE(parent, nullptr) << "kill #" << rec.id << " has no parent";
    EXPECT_TRUE(is_fault(*parent, "churn"));
    EXPECT_EQ(parent->epoch, rec.epoch);
  }
}

}  // namespace
}  // namespace rfh
