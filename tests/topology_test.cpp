#include "topology/topology.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/geo.h"

namespace rfh {
namespace {

Topology two_dc_topology() {
  Topology topo;
  const DatacenterId a = topo.add_datacenter("GA1", "USA",
                                             Continent::kNorthAmerica,
                                             GeoPoint{33.7, -84.4});
  const DatacenterId b = topo.add_datacenter("TY1", "JPN", Continent::kAsia,
                                             GeoPoint{35.7, 139.7});
  for (const DatacenterId dc : {a, b}) {
    const RoomId room = topo.add_room(dc);
    for (int rack_i = 0; rack_i < 2; ++rack_i) {
      const RackId rack = topo.add_rack(room);
      for (int s = 0; s < 3; ++s) {
        topo.add_server(rack, ServerSpec{});
      }
    }
  }
  return topo;
}

TEST(Topology, CountsAndHierarchy) {
  const Topology topo = two_dc_topology();
  EXPECT_EQ(topo.datacenter_count(), 2u);
  EXPECT_EQ(topo.server_count(), 12u);
  EXPECT_EQ(topo.servers_in(DatacenterId{0}).size(), 6u);
  EXPECT_EQ(topo.servers_in(DatacenterId{1}).size(), 6u);
}

TEST(Topology, ServerBackPointersConsistent) {
  const Topology topo = two_dc_topology();
  for (const Server& s : topo.servers()) {
    const Rack& rack = topo.rack(s.rack);
    EXPECT_EQ(rack.datacenter, s.datacenter);
    const Room& room = topo.room(s.room);
    EXPECT_EQ(room.datacenter, s.datacenter);
    // The server appears in its rack's and datacenter's lists.
    EXPECT_NE(std::find(rack.servers.begin(), rack.servers.end(), s.id),
              rack.servers.end());
    const auto& dc_servers = topo.datacenter(s.datacenter).servers;
    EXPECT_NE(std::find(dc_servers.begin(), dc_servers.end(), s.id),
              dc_servers.end());
  }
}

TEST(Topology, LabelsEncodePosition) {
  const Topology topo = two_dc_topology();
  // First server of DC 0: room 1, rack 1, server 1.
  EXPECT_EQ(topo.server(ServerId{0}).label.to_string(),
            "NA-USA-GA1-C01-R01-S1");
  // Fourth server of DC 0 is the first in rack 2.
  EXPECT_EQ(topo.server(ServerId{3}).label.to_string(),
            "NA-USA-GA1-C01-R02-S1");
  // First server of DC 1 (Tokyo).
  EXPECT_EQ(topo.server(ServerId{6}).label.to_string(),
            "AS-JPN-TY1-C01-R01-S1");
}

TEST(Topology, AvailabilityLevelsAcrossHierarchy) {
  const Topology topo = two_dc_topology();
  EXPECT_EQ(topo.availability_level(ServerId{0}, ServerId{0}), 1u);
  EXPECT_EQ(topo.availability_level(ServerId{0}, ServerId{1}), 2u);  // rack
  EXPECT_EQ(topo.availability_level(ServerId{0}, ServerId{3}), 3u);  // room
  EXPECT_EQ(topo.availability_level(ServerId{0}, ServerId{6}), 5u);  // DC
}

TEST(Topology, DistanceSymmetricAndZeroToSelf) {
  const Topology topo = two_dc_topology();
  EXPECT_DOUBLE_EQ(topo.distance_km(DatacenterId{0}, DatacenterId{0}), 0.0);
  EXPECT_DOUBLE_EQ(topo.distance_km(DatacenterId{0}, DatacenterId{1}),
                   topo.distance_km(DatacenterId{1}, DatacenterId{0}));
  // Atlanta-Tokyo is around 11,000 km.
  EXPECT_NEAR(topo.distance_km(DatacenterId{0}, DatacenterId{1}), 11000.0,
              500.0);
}

TEST(Geo, GreatCircleKnownDistances) {
  const GeoPoint nyc{40.7, -74.0};
  const GeoPoint london{51.5, -0.1};
  EXPECT_NEAR(great_circle_km(nyc, london), 5570.0, 60.0);
  EXPECT_DOUBLE_EQ(great_circle_km(nyc, nyc), 0.0);
}

TEST(Geo, ContinentCodesRoundTrip) {
  for (const Continent c :
       {Continent::kNorthAmerica, Continent::kSouthAmerica, Continent::kEurope,
        Continent::kAsia, Continent::kAfrica, Continent::kOceania}) {
    EXPECT_EQ(parse_continent(continent_code(c)), c);
  }
  EXPECT_DEATH(parse_continent("XX"), "");
}

TEST(Topology, SpecIsStoredPerServer) {
  Topology topo;
  const DatacenterId dc = topo.add_datacenter(
      "GA1", "USA", Continent::kNorthAmerica, GeoPoint{});
  const RackId rack = topo.add_rack(topo.add_room(dc));
  ServerSpec spec;
  spec.per_replica_capacity = 7.5;
  spec.max_vnodes = 3;
  const ServerId s = topo.add_server(rack, spec);
  EXPECT_DOUBLE_EQ(topo.server(s).spec.per_replica_capacity, 7.5);
  EXPECT_EQ(topo.server(s).spec.max_vnodes, 3u);
}

}  // namespace
}  // namespace rfh
