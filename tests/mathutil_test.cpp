#include "common/mathutil.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rfh {
namespace {

TEST(Mean, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Mean, KnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(PopulationStddev, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(population_stddev({}), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(population_stddev(one), 0.0);
}

TEST(PopulationStddev, ConstantSeries) {
  const std::vector<double> v{3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(population_stddev(v), 0.0);
}

TEST(PopulationStddev, KnownValue) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: classic example with population stddev 2.
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(population_stddev(v), 2.0, 1e-12);
}

TEST(PopulationStddev, TranslationInvariant) {
  const std::vector<double> v{1.0, 5.0, 9.0};
  std::vector<double> shifted;
  for (const double x : v) shifted.push_back(x + 100.0);
  EXPECT_NEAR(population_stddev(v), population_stddev(shifted), 1e-9);
}

TEST(CoefficientOfVariation, ScaleInvariant) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  std::vector<double> scaled;
  for (const double x : v) scaled.push_back(x * 7.0);
  EXPECT_NEAR(coefficient_of_variation(v), coefficient_of_variation(scaled),
              1e-12);
}

TEST(CoefficientOfVariation, ZeroMeanGuard) {
  const std::vector<double> v{-1.0, 1.0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(v), 0.0);
}

TEST(Binomial, BaseCases) {
  EXPECT_DOUBLE_EQ(binomial(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 6), 0.0);
}

TEST(Binomial, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial(4, 2), 6.0);
  EXPECT_DOUBLE_EQ(binomial(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(binomial(52, 5), 2598960.0);
}

class BinomialIdentityTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BinomialIdentityTest, Symmetry) {
  const std::uint32_t n = GetParam();
  for (std::uint32_t k = 0; k <= n; ++k) {
    EXPECT_NEAR(binomial(n, k), binomial(n, n - k), 1e-6);
  }
}

TEST_P(BinomialIdentityTest, PascalRule) {
  const std::uint32_t n = GetParam();
  for (std::uint32_t k = 1; k <= n; ++k) {
    EXPECT_NEAR(binomial(n + 1, k), binomial(n, k) + binomial(n, k - 1), 1e-6);
  }
}

TEST_P(BinomialIdentityTest, RowSumIsPowerOfTwo) {
  const std::uint32_t n = GetParam();
  double sum = 0.0;
  for (std::uint32_t k = 0; k <= n; ++k) sum += binomial(n, k);
  EXPECT_NEAR(sum, std::pow(2.0, static_cast<double>(n)), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(SmallN, BinomialIdentityTest,
                         ::testing::Values<std::uint32_t>(0, 1, 2, 5, 10, 20));

}  // namespace
}  // namespace rfh
