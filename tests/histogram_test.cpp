#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rfh {
namespace {

TEST(Histogram, EmptyDefaults) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.fraction_at_or_below(100.0), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  h.add(1.0, 10.0);
  h.add(3.0, 20.0);
  EXPECT_DOUBLE_EQ(h.mean(), (10.0 + 60.0) / 4.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(h.max_value(), 20.0);
}

TEST(Histogram, ZeroWeightIsIgnored) {
  Histogram h;
  h.add(0.0, 50.0);
  EXPECT_TRUE(h.empty());
}

TEST(Histogram, PercentileBracketsTheValue) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(1.0, 10.0);
  // All mass at one value: every percentile lands in its bucket
  // (geometric buckets: ~3.3% wide at this range).
  EXPECT_NEAR(h.percentile(0.5), 10.0, 0.5);
  EXPECT_NEAR(h.percentile(0.999), 10.0, 0.5);
}

TEST(Histogram, PercentilesAreMonotone) {
  Histogram h;
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) {
    h.add(1.0, rng.uniform_real_range(1.0, 1000.0));
  }
  double prev = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Histogram, PercentileOfUniformDistribution) {
  Histogram h;
  Rng rng(32);
  for (int i = 0; i < 50000; ++i) {
    h.add(1.0, rng.uniform_real_range(0.0, 100.0));
  }
  EXPECT_NEAR(h.percentile(0.5), 50.0, 4.0);
  EXPECT_NEAR(h.percentile(0.9), 90.0, 5.0);
}

TEST(Histogram, FractionAtOrBelow) {
  Histogram h;
  h.add(9.0, 10.0);
  h.add(1.0, 5000.0);
  EXPECT_NEAR(h.fraction_at_or_below(300.0), 0.9, 1e-9);
  EXPECT_NEAR(h.fraction_at_or_below(10000.0), 1.0, 1e-9);
  EXPECT_NEAR(h.fraction_at_or_below(0.1), 0.0, 1e-9);
}

TEST(Histogram, ValuesAreClampedNotDropped) {
  Histogram h;
  h.add(1.0, 1e9);    // beyond kMaxValue
  h.add(1.0, 1e-9);   // below kMinValue
  EXPECT_DOUBLE_EQ(h.total_weight(), 2.0);
  EXPECT_NEAR(h.fraction_at_or_below(Histogram::kMaxValue), 1.0, 1e-12);
}

TEST(Histogram, MergeCombinesMass) {
  Histogram a;
  Histogram b;
  a.add(2.0, 10.0);
  b.add(2.0, 1000.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 4.0);
  EXPECT_NEAR(a.fraction_at_or_below(100.0), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(a.mean(), (20.0 + 2000.0) / 4.0);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.add(5.0, 42.0);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.percentile(0.9), 0.0);
}

TEST(HistogramDeath, NegativeWeight) {
  Histogram h;
  EXPECT_DEATH(h.add(-1.0, 10.0), "");
  EXPECT_DEATH((void)h.percentile(0.0), "");
  EXPECT_DEATH((void)h.percentile(1.5), "");
}

}  // namespace
}  // namespace rfh
