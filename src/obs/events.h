// The structured event taxonomy of the observability subsystem.
//
// Everything the simulator *does* — and, crucially, *why* — is describable
// as one of the typed events below. The engine and policies emit them
// through an EventBus (see event_bus.h); sinks serialize or aggregate
// them (see sinks.h). Events are plain aggregates over strong IDs and
// doubles, cheap to copy and trivially serializable, so a trace can be
// replayed, diffed, or loaded into Perfetto without the simulator.
//
// Design rule: this header depends only on common/ — the sim layer
// depends on obs, never the reverse.
#pragma once

#include <cstdint>
#include <variant>

#include "common/ids.h"
#include "common/units.h"

namespace rfh {

// ---------------------------------------------------------------------------
// Decision explanations
// ---------------------------------------------------------------------------

/// Which branch of the RFH decision tree (paper Fig. 2, Eqs. 12-17)
/// produced an action. Baseline policies leave kNone.
enum class DecisionRule : std::uint8_t {
  kNone = 0,
  /// Eq. 14: copy count below the availability floor r_min.
  kAvailabilityFloor,
  /// Eqs. 12-13: holder overloaded, replica grown at a gamma-qualified hub.
  kOverloadHub,
  /// Eq. 12 fired but no forwarder crossed gamma: relief forced onto the
  /// top forwarders anyway (the decision tree's "force" branch).
  kOverloadForced,
  /// Eq. 12 fired but no forwarder carries the traffic at all: the demand
  /// is local, so a copy is grown in the holder's own datacenter.
  kOverloadLocal,
  /// Eq. 16: relocating a cold replica to the hub clears the benefit bar.
  kMigrationBenefit,
  /// Eq. 15: replica cold below delta * q_bar for the streak window.
  kSuicideCold,
};
inline constexpr std::size_t kDecisionRuleCount = 7;

[[nodiscard]] const char* rule_name(DecisionRule rule) noexcept;
/// The inequality that fired, in the paper's notation (empty for kNone).
[[nodiscard]] const char* rule_inequality(DecisionRule rule) noexcept;

/// Attached by the policy to every action it emits: the observed values
/// and thresholds that made the chosen inequality fire. `observed` and
/// `threshold` are the two sides of rule_inequality(rule); q_bar and the
/// Table I coefficients give the reader enough to recompute it.
struct DecisionExplanation {
  DecisionRule rule = DecisionRule::kNone;
  /// Left-hand side of the fired inequality (e.g. the holder's smoothed
  /// traffic tr, or the copy count r for the availability floor).
  double observed = 0.0;
  /// Right-hand side (e.g. beta * q_bar, or r_min).
  double threshold = 0.0;
  /// The partition's smoothed per-requester demand q_bar (Eq. 9-11).
  double q_bar = 0.0;
  // Threshold coefficients in force when the decision was taken.
  double beta = 0.0;
  double gamma = 0.0;
  double delta = 0.0;
  double mu = 0.0;
  /// Copy count at decision time and the Eq. 14 floor.
  std::uint32_t replica_count = 0;
  std::uint32_t r_min = 0;
};

// ---------------------------------------------------------------------------
// Drop reasons
// ---------------------------------------------------------------------------

/// Why the engine refused an action during validation (engine.cpp's
/// apply_actions). Ordered so the values double as counter indices.
enum class DropReason : std::uint8_t {
  /// Source out of per-epoch replication/migration bandwidth budget.
  kBandwidth = 0,
  /// Target over the phi storage-occupancy limit (Eq. 19).
  kStorageCap,
  /// Target at its virtual-node cap, or the partition at its copy cap.
  kNodeCap,
  /// Target (or migration source copy) dead or nonexistent.
  kDeadTarget,
  /// Duplicate copy, missing source replica, or primary-protection rules.
  kInvalid,
  /// EC zone-diversity rule: the target's datacenter already holds m
  /// fragments of the stripe (replica mode never emits this).
  kZoneDiversity,
  /// can_accept refused but no classifier check matched — a rejection
  /// path the classifier does not model yet (asserts in debug builds).
  kUnknown,
};
inline constexpr std::size_t kDropReasonCount = 7;

[[nodiscard]] const char* drop_reason_name(DropReason reason) noexcept;

/// Which action family a dropped action belonged to.
enum class ActionKind : std::uint8_t { kReplicate = 0, kMigrate, kSuicide };

[[nodiscard]] const char* action_kind_name(ActionKind kind) noexcept;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Per-epoch routing summary (one per step, after traffic propagation):
/// the endpoint numbers of Eqs. 2-8 without the per-flow firehose.
struct QueryRoutedSummary {
  Epoch epoch = 0;
  double total_queries = 0.0;
  double unserved_queries = 0.0;
  double mean_path_length = 0.0;
};

/// A copy was created (replication applied and accounted per Eq. 1).
struct ReplicaAdded {
  Epoch epoch = 0;
  PartitionId partition;
  ServerId source;  // the primary that sourced the transfer
  ServerId target;
  double cost = 0.0;  // Eq. 1 transfer cost
  DecisionExplanation why;
};

/// A copy was relocated (Eq. 16 benefit bar cleared).
struct MigrationExecuted {
  Epoch epoch = 0;
  PartitionId partition;
  ServerId from;
  ServerId to;
  double cost = 0.0;
  DecisionExplanation why;
};

/// A cold replica removed itself (Eq. 15).
struct Suicide {
  Epoch epoch = 0;
  PartitionId partition;
  ServerId server;
  DecisionExplanation why;
};

/// The engine refused a policy action during validation.
struct ActionDropped {
  Epoch epoch = 0;
  PartitionId partition;
  ActionKind kind = ActionKind::kReplicate;
  DropReason reason = DropReason::kInvalid;
  /// The server the action targeted (replication/migration target, or the
  /// suiciding copy's host); invalid when the action itself was malformed.
  ServerId target;
};

/// Failure injection: a live server was killed.
struct ServerFailed {
  Epoch epoch = 0;
  ServerId server;
};

/// Failure injection: a dead server came back online.
struct ServerRecovered {
  Epoch epoch = 0;
  ServerId server;
};

/// A surviving copy was promoted to primary after its holder died.
struct PrimaryPromoted {
  Epoch epoch = 0;
  PartitionId partition;
  ServerId new_primary;
};

/// No copy survived: the partition was reseeded empty at the ring
/// successor (counted as a data loss).
struct Reseeded {
  Epoch epoch = 0;
  PartitionId partition;
  ServerId new_home;
};

/// An inter-datacenter link went down; routes were recomputed.
struct LinkFailed {
  Epoch epoch = 0;
  DatacenterId a;
  DatacenterId b;
};

/// A previously failed link came back.
struct LinkRestored {
  Epoch epoch = 0;
  DatacenterId a;
  DatacenterId b;
};

/// A chaos-plan entry was applied by the fault subsystem (src/fault/):
/// one event per injection, emitted before the epoch it acts on steps.
/// `kind` is a static-duration string (fault_kind_name): "crash",
/// "recover", "outage", "linkdown", "flap", "churn", "flashcrowd",
/// "zoneoutage" or "stalestats". `servers` counts the servers killed,
/// revived or frozen (0 for link and traffic events); dc / link
/// endpoints are invalid when inapplicable. `magnitude` is the
/// flash-crowd traffic factor, or the zone (continent) index for
/// "zoneoutage" (0 otherwise).
struct FaultInjected {
  Epoch epoch = 0;
  const char* kind = "";
  std::uint32_t servers = 0;
  DatacenterId dc;
  DatacenterId link_a;
  DatacenterId link_b;
  double magnitude = 0.0;
};

/// End-of-step summary mirroring EpochReport.
struct EpochCompleted {
  Epoch epoch = 0;
  double total_queries = 0.0;
  double unserved_queries = 0.0;
  std::uint32_t replications = 0;
  std::uint32_t migrations = 0;
  std::uint32_t suicides = 0;
  std::uint32_t dropped_actions = 0;
  std::uint32_t total_replicas = 0;
  double replication_cost = 0.0;
  double migration_cost = 0.0;
};

/// Profiler span (telemetry/profiler.h): wall-clock cost of one engine
/// phase within one epoch. `phase` is a static-duration string
/// (phase_name()); start/duration are fractions of the epoch's measured
/// wall time, so the ChromeTraceSink can nest the span inside the
/// simulated-time epoch slice regardless of the real-to-simulated ratio.
/// Only emitted when a PhaseProfiler is attached — wall times are
/// observational and never feed simulation state.
struct PhaseSpan {
  Epoch epoch = 0;
  const char* phase = "";
  double start_frac = 0.0;
  double dur_frac = 0.0;
  double wall_ms = 0.0;
};

/// Per-epoch streaming-load summary (src/stream/): the queueing layer's
/// counterpart to EpochCompleted. Arrival accounting satisfies
/// arrivals == served + blocked + dropped (the kStreamAccounting
/// invariant); mean_wait_ms is the weighted mean queueing delay of
/// accepted queries after the M/G/c variance correction.
struct StreamEpochSummary {
  Epoch epoch = 0;
  double arrivals = 0.0;
  double served = 0.0;
  double blocked = 0.0;
  double dropped = 0.0;
  std::uint32_t max_queue_depth = 0;
  double mean_wait_ms = 0.0;
};

/// A server's waiting room hit its --queue-cap and shed load this epoch
/// (one event per saturated server per epoch, emitted at epoch end).
struct QueueSaturated {
  Epoch epoch = 0;
  ServerId server;
  DatacenterId dc;
  std::uint32_t max_depth = 0;
  std::uint32_t cap = 0;
  double dropped = 0.0;
};

/// A partition's smoothed demand q_bar (Eqs. 9-11) moved sharply since
/// the last emitted baseline — the statistical echo of a perturbation
/// (fault, flash crowd, link rewire) on its way to tripping a threshold
/// inequality. Emitted only when a sink is attached, and only when the
/// relative move exceeds the engine's shift threshold, so steady-state
/// drift stays silent.
struct TrafficShift {
  Epoch epoch = 0;
  PartitionId partition;
  /// q_bar at the previous baseline and now.
  double q_bar_before = 0.0;
  double q_bar_after = 0.0;
};

/// A decision-tree inequality fired for a partition: emitted by the
/// engine as it begins validating the rule's action, before the
/// ReplicaAdded / MigrationExecuted / Suicide / ActionDropped outcome,
/// which is parented to this event in the causal chain.
struct RuleFired {
  Epoch epoch = 0;
  PartitionId partition;
  DecisionRule rule = DecisionRule::kNone;
  /// The two sides of rule_inequality(rule) plus the smoothed demand.
  double observed = 0.0;
  double threshold = 0.0;
  double q_bar = 0.0;
};

/// The SLO watchdog (telemetry/slo.h) entered breach on one objective:
/// both the short- and long-window burn rates crossed the alert
/// threshold. Edge-triggered — one event per breach episode, not per
/// breaching epoch.
struct SloBreach {
  Epoch epoch = 0;
  /// Static-duration objective name (slo_objective_name): "availability",
  /// "stream_p99", "migration_rate" or "drop_rate".
  const char* objective = "";
  /// Long-window mean of the objective's signal vs its target.
  double observed = 0.0;
  double target = 0.0;
  double burn_short = 0.0;
  double burn_long = 0.0;
};

/// Fault injection: a server's TrafficStats smoothing was frozen (it
/// keeps reporting stale load numbers into Eqs. 9-11/17) or thawed.
/// Emitted once per transition by the stalestats chaos event.
struct StatsFrozen {
  Epoch epoch = 0;
  ServerId server;
  bool frozen = true;
};

/// EC mode: failures left the stripe with fewer than k live fragments —
/// the partition is reconstruction-infeasible (counted as a data loss)
/// until repair replication brings it back to k.
struct StripeLost {
  Epoch epoch = 0;
  PartitionId partition;
  /// Live fragments remaining (0 < fragments_alive < k; a stripe losing
  /// every fragment is reported through Reseeded instead).
  std::uint32_t fragments_alive = 0;
};

/// EC mode: repairs restored a previously lost stripe to at least k live
/// fragments; reads can reconstruct again.
struct StripeReconstructed {
  Epoch epoch = 0;
  PartitionId partition;
};

using Event =
    std::variant<QueryRoutedSummary, ReplicaAdded, MigrationExecuted, Suicide,
                 ActionDropped, ServerFailed, ServerRecovered, PrimaryPromoted,
                 Reseeded, LinkFailed, LinkRestored, FaultInjected,
                 EpochCompleted, PhaseSpan, StreamEpochSummary,
                 QueueSaturated, TrafficShift, RuleFired, SloBreach,
                 StatsFrozen, StripeLost, StripeReconstructed>;

/// Stable PascalCase type name ("ReplicaAdded", ...), used by sinks and
/// the CLI's --trace-filter grammar.
[[nodiscard]] const char* event_name(const Event& event) noexcept;

/// event_name by variant alternative index ("?" when out of range) —
/// lets compact records (obs/timeline.h) name their type without
/// materializing an Event.
[[nodiscard]] const char* event_index_name(std::size_t index) noexcept;

/// The epoch stamped on the event (every alternative carries one).
[[nodiscard]] Epoch event_epoch(const Event& event) noexcept;

}  // namespace rfh
